//! Trace and rollup exporters: Chrome trace-event JSON (Perfetto-loadable)
//! and the `TELEMETRY.json` rollup artifact.
//!
//! Both are hand-rolled `writeln!` JSON, matching the workspace's
//! vendored-offline policy (no serde) and the style of
//! `nc_bench::perf::render_json_all`.

use std::fmt::Write as _;

use crate::{Level, State, Value};

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number (JSON has no NaN/Inf; clamp to null).
fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip formatting keeps the artifact exact.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

fn args_json(args: &[(&'static str, Value)]) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": ", escape(name));
        match value {
            Value::U64(u) => {
                let _ = write!(out, "{u}");
            }
            Value::F64(f) => out.push_str(&number(*f)),
            Value::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
        }
    }
    out.push('}');
    out
}

/// Renders the state as Chrome trace-event JSON: `ph:"M"` metadata naming
/// each track, `ph:"X"` complete events for spans, `ph:"i"` instants.
/// Timestamps are microseconds (the trace-event unit); seconds-scale
/// simulated time keeps full precision through the 1e6 scale.
pub(crate) fn chrome_trace(state: &State) -> String {
    let mut events: Vec<String> = Vec::new();

    // Track metadata: one process per distinct process name, one thread row
    // per track. pid/tid are 1-based indices (Perfetto dislikes pid 0).
    let mut processes: Vec<&str> = Vec::new();
    for t in &state.tracks {
        if !processes.contains(&t.process.as_str()) {
            processes.push(&t.process);
        }
    }
    for (pi, p) in processes.iter().enumerate() {
        events.push(format!(
            "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {}, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}}",
            pi + 1,
            escape(p)
        ));
    }
    let track_ids: Vec<(usize, usize)> = state
        .tracks
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let pid = processes.iter().position(|p| *p == t.process).unwrap_or(0) + 1;
            (pid, ti + 1)
        })
        .collect();
    for (ti, t) in state.tracks.iter().enumerate() {
        let (pid, tid) = track_ids[ti];
        events.push(format!(
            "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(&t.thread)
        ));
    }

    for sp in &state.spans {
        let (pid, tid) = track_ids.get(sp.track).copied().unwrap_or((1, 1));
        events.push(format!(
            "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \"dur\": {}, \
             \"name\": \"{}\", \"cat\": \"{}\", \"args\": {}}}",
            number(sp.start_s * 1e6),
            number(sp.dur_s * 1e6),
            escape(&sp.name),
            escape(sp.cat),
            args_json(&sp.args)
        ));
    }
    for i in &state.instants {
        let (pid, tid) = track_ids.get(i.track).copied().unwrap_or((1, 1));
        events.push(format!(
            "{{\"ph\": \"i\", \"s\": \"t\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \
             \"name\": \"{}\", \"cat\": \"{}\", \"args\": {}}}",
            number(i.t_s * 1e6),
            escape(&i.name),
            escape(i.cat),
            args_json(&i.args)
        ));
    }

    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {e}{}",
            if i + 1 < events.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    out
}

/// Renders the `TELEMETRY.json` rollup: level, per-category span/instant
/// rollups (count, exact duration fold, u64-arg sums), counters, gauges,
/// histogram snapshots.
pub(crate) fn rollup_json(state: &State, level: Level) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"level\": \"{}\",", level.name());
    let _ = writeln!(out, "  \"spans\": {},", state.spans.len());
    let _ = writeln!(out, "  \"instants\": {},", state.instants.len());

    // Per-category rollup, in first-appearance order.
    let mut cats: Vec<&'static str> = Vec::new();
    for sp in &state.spans {
        if !cats.contains(&sp.cat) {
            cats.push(sp.cat);
        }
    }
    for i in &state.instants {
        if !cats.contains(&i.cat) {
            cats.push(i.cat);
        }
    }
    out.push_str("  \"categories\": {\n");
    for (ci, cat) in cats.iter().enumerate() {
        let span_count = state.spans.iter().filter(|sp| sp.cat == *cat).count();
        let instant_count = state.instants.iter().filter(|i| i.cat == *cat).count();
        let dur: f64 = state
            .spans
            .iter()
            .filter(|sp| sp.cat == *cat)
            .fold(0.0, |acc, sp| acc + sp.dur_s);
        let mut arg_names: Vec<&'static str> = Vec::new();
        for sp in state.spans.iter().filter(|sp| sp.cat == *cat) {
            for (name, value) in &sp.args {
                if matches!(value, Value::U64(_)) && !arg_names.contains(name) {
                    arg_names.push(name);
                }
            }
        }
        let _ = writeln!(out, "    \"{}\": {{", escape(cat));
        let _ = writeln!(out, "      \"spans\": {span_count},");
        let _ = writeln!(out, "      \"instants\": {instant_count},");
        let _ = writeln!(out, "      \"total_dur_s\": {},", number(dur));
        out.push_str("      \"u64_arg_sums\": {");
        for (ai, arg) in arg_names.iter().enumerate() {
            let sum: u64 = state
                .spans
                .iter()
                .filter(|sp| sp.cat == *cat)
                .flat_map(|sp| &sp.args)
                .filter(|(n, _)| n == arg)
                .map(|(_, v)| if let Value::U64(u) = v { *u } else { 0 })
                .sum();
            if ai > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {sum}", escape(arg));
        }
        out.push_str("}\n");
        let _ = writeln!(out, "    }}{}", if ci + 1 < cats.len() { "," } else { "" });
    }
    out.push_str("  },\n");

    out.push_str("  \"counters\": {");
    for (i, (name, v)) in state.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", escape(name));
    }
    out.push_str(if state.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in state.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape(name), number(*v));
    }
    out.push_str(if state.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"histograms\": {\n");
    for (i, (name, h)) in state.histograms.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", escape(name));
        let _ = writeln!(out, "      \"count\": {},", h.count());
        let _ = writeln!(out, "      \"sum\": {},", number(h.sum()));
        let _ = writeln!(out, "      \"mean\": {},", number(h.mean()));
        let _ = writeln!(out, "      \"min\": {},", number(h.min()));
        let _ = writeln!(out, "      \"max\": {},", number(h.max()));
        out.push_str("      \"log2_buckets\": {");
        for (bi, (bucket, count)) in h.buckets().iter().enumerate() {
            if bi > 0 {
                out.push_str(", ");
            }
            let label = if *bucket == crate::ZERO_BUCKET {
                "zero".to_owned()
            } else {
                format!("{bucket}")
            };
            let _ = write!(out, "\"{label}\": {count}");
        }
        out.push_str("}\n");
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < state.histograms.len() {
                ","
            } else {
                ""
            }
        );
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, TrackMeta};

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\t"), "line\\nbreak\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_is_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(2.0), "2.0");
        assert_eq!(number(0.0), "0.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1e-12), "0.000000000001");
    }

    #[test]
    fn chrome_trace_names_tracks_and_events() {
        let tel = Telemetry::enabled(crate::Level::Spans);
        let t0 = tel.track("sim", "layers");
        let t1 = tel.track("serving", "slice0");
        tel.span(
            t0,
            "timing.layer",
            "conv1",
            0.0,
            1e-3,
            vec![("cycles", Value::U64(42))],
        );
        tel.instant(t1, "serving.event", "arrive", 2e-3, vec![]);
        let json = tel.to_chrome_trace();
        assert!(json.starts_with("{\n  \"traceEvents\": ["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\": \"sim\""));
        assert!(json.contains("\"name\": \"slice0\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 1000"));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"cycles\": 42"));
        assert!(json.ends_with("}\n"));
        // Spans that reference a track use 1-based pids/tids.
        assert!(!json.contains("\"pid\": 0"));
    }

    #[test]
    fn rollup_reports_categories_and_registry() {
        let tel = Telemetry::enabled(crate::Level::Detail);
        let t = tel.track("sim", "layers");
        tel.span(
            t,
            "functional.layer",
            "conv1",
            0.0,
            0.25,
            vec![("mul_rounds", Value::U64(5))],
        );
        tel.span(
            t,
            "functional.layer",
            "conv2",
            0.25,
            0.5,
            vec![("mul_rounds", Value::U64(7))],
        );
        tel.counter_add("sram.mac_rounds", 12);
        tel.gauge_set("engine.wall_s", 0.75);
        tel.histogram_record("engine.shard_seconds", 0.001);
        let json = tel.to_rollup_json();
        assert!(json.contains("\"level\": \"detail\""));
        assert!(json.contains("\"functional.layer\""));
        assert!(json.contains("\"mul_rounds\": 12"));
        assert!(json.contains("\"total_dur_s\": 0.75"));
        assert!(json.contains("\"sram.mac_rounds\": 12"));
        assert!(json.contains("\"engine.wall_s\": 0.75"));
        assert!(json.contains("\"engine.shard_seconds\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn empty_state_renders_valid_documents() {
        let json = rollup_json(&crate::State::default(), Level::Off);
        assert!(json.contains("\"level\": \"off\""));
        assert!(json.ends_with("}\n"));
        let mut s = crate::State::default();
        s.tracks.push(TrackMeta {
            process: "p".into(),
            thread: "t".into(),
        });
        assert!(chrome_trace(&s).contains("process_name"));
    }
}
