//! **nc-serve**: a deterministic discrete-event serving simulator that
//! drives the Neural Cache timing/batching stack under realistic load —
//! the systems layer the paper's headline *throughput* result (604
//! inferences/s on Inception v3, Section VII / Figure 16) turns into once
//! requests arrive over time instead of as one fixed batch.
//!
//! The pipeline:
//!
//! 1. [`trace`]: seeded request **arrival traces** — open-loop Poisson,
//!    bursty (two-state Markov-modulated Poisson), and closed-loop client
//!    populations, each request carrying a traffic class drawn from an
//!    [`nc_dnn::workload::TrafficClass`] mix;
//! 2. [`batcher`]: an admission queue feeding pluggable **dynamic batching
//!    policies** (fixed-size, max-wait timeout, SLO-aware adaptive
//!    sizing), costed through the plan-once
//!    [`neural_cache::BatchCostModel`];
//! 3. [`sim`]: a **multi-slice scheduler** dispatching formed batches onto
//!    independent cache slices (each pays the one-time filter load on its
//!    first batch, Section IV-E) with per-slice utilization tracking;
//! 4. [`metrics`]: p50/p95/p99 latency, queue depth over time, goodput vs
//!    offered load, and per-class SLO violation rates, plus the
//!    conservation invariants (`admitted = completed + dropped + pending`,
//!    goodput ≤ offered load) the bench gate enforces.
//!
//! Everything is deterministic: identical seeds give byte-identical
//! [`ServingTrace`] logs under every [`neural_cache::ExecutionEngine`].
//!
//! # Quickstart
//!
//! ```
//! use nc_serve::{simulate, BatchPolicy, ServeConfig, TraceConfig};
//! use nc_dnn::inception::inception_v3;
//!
//! let config = ServeConfig::default_two_slice();
//! let trace = TraceConfig::poisson(400.0, 64, 2018);
//! let out = simulate(&config, &inception_v3(), &trace);
//! assert_eq!(out.summary.admitted, 64);
//! assert!(out.summary.conservation_holds());
//! println!("p99 = {:.2} ms at {:.0} rps goodput",
//!          out.summary.p99_ms, out.summary.goodput_rps);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: the event loop converts tick counters to f64 metrics
// (bounded far below 2^52) and is one long, linear state machine; tests
// compare exact rational outputs with `==`.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::float_cmp,
    clippy::too_many_lines
)]

pub mod batcher;
pub mod metrics;
pub mod sim;
pub mod trace;

pub use batcher::{BatchDecision, BatchPolicy};
pub use metrics::{percentile, Completion, MetricsCollector, ServingSummary};
pub use sim::{
    simulate, simulate_traced, simulate_with_cost, ServeConfig, ServingOutcome, ServingTrace,
    TraceEvent,
};
pub use trace::{ArrivalProcess, Request, TraceConfig, TraceKind};
