//! Dynamic batching policies: how the admission queue turns waiting
//! requests into dispatched batches, costed through the plan-once
//! [`BatchCostModel`].

use nc_geometry::SimTime;
use neural_cache::BatchCostModel;

/// A batch-formation policy evaluated whenever a slice is free and the
/// queue is non-empty (and re-evaluated at its own requested deadlines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Wait until exactly `size` requests queue, then dispatch them
    /// (classic fixed-size batching; the tail of a draining trace
    /// dispatches short).
    Fixed {
        /// Batch size to accumulate.
        size: usize,
    },
    /// Dispatch `max_batch` as soon as they queue, or whatever has queued
    /// once the oldest request has waited `max_wait` (timeout batching).
    MaxWait {
        /// Largest batch to form.
        max_batch: usize,
        /// Longest the oldest request may wait before a forced dispatch.
        max_wait: SimTime,
    },
    /// Work-conserving SLO-aware adaptive sizing: dispatch immediately
    /// whenever a slice is free, choosing the largest batch (up to
    /// `max_batch`) whose estimated completion still meets the oldest
    /// request's latency SLO (the `ServeConfig::slo` budget handed to
    /// [`BatchPolicy::decide`] — one SLO, no duplicated copy to drift);
    /// when even a single-image batch would miss, salvage throughput with
    /// a full batch. Batch sizes grow with load and shrink back when the
    /// queue drains.
    SloAdaptive {
        /// Largest batch to form.
        max_batch: usize,
    },
}

/// What the policy wants done at this evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchDecision {
    /// Dispatch the first `n` queued requests now.
    Dispatch(usize),
    /// Hold, and re-evaluate no later than the given time (a timer event).
    WaitUntil(SimTime),
    /// Hold until the next arrival or completion.
    Wait,
}

impl BatchPolicy {
    /// Largest batch this policy ever forms.
    #[must_use]
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Fixed { size } => size,
            BatchPolicy::MaxWait { max_batch, .. } | BatchPolicy::SloAdaptive { max_batch, .. } => {
                max_batch
            }
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BatchPolicy::Fixed { .. } => "fixed",
            BatchPolicy::MaxWait { .. } => "max-wait",
            BatchPolicy::SloAdaptive { .. } => "slo-adaptive",
        }
    }

    /// Policy decision given the queue state: `queued` requests waiting,
    /// the overall-oldest arrival among them, whether the trace is
    /// draining (no further arrivals can ever come, so holding out for a
    /// fuller batch is pointless), whether the candidate slice is `cold`
    /// (its first batch pays the one-time filter load, which the SLO-aware
    /// policy must price into feasibility), and the base latency `slo`
    /// budget from `ServeConfig` (only [`BatchPolicy::SloAdaptive`]
    /// consults it).
    ///
    /// # Panics
    ///
    /// Panics if called with an empty queue.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one flat scheduler-state snapshot
    pub fn decide(
        &self,
        now: SimTime,
        queued: usize,
        oldest_arrival: SimTime,
        draining: bool,
        cold: bool,
        slo: SimTime,
        cost: &BatchCostModel,
    ) -> BatchDecision {
        assert!(queued > 0, "policy evaluated on an empty queue");
        match *self {
            BatchPolicy::Fixed { size } => {
                let size = size.max(1);
                if queued >= size {
                    BatchDecision::Dispatch(size)
                } else if draining {
                    BatchDecision::Dispatch(queued)
                } else {
                    BatchDecision::Wait
                }
            }
            BatchPolicy::MaxWait {
                max_batch,
                max_wait,
            } => {
                let max_batch = max_batch.max(1);
                let deadline = oldest_arrival + max_wait;
                if queued >= max_batch {
                    BatchDecision::Dispatch(max_batch)
                } else if now >= deadline || draining {
                    BatchDecision::Dispatch(queued)
                } else {
                    BatchDecision::WaitUntil(deadline)
                }
            }
            BatchPolicy::SloAdaptive { max_batch } => {
                let cap = max_batch.max(1).min(queued);
                let wait = now - oldest_arrival.min(now);
                // Largest batch whose service on *this* slice (cold pays
                // the filter load) still meets the oldest request's SLO;
                // service time is monotone in batch size, so binary-search
                // the feasibility boundary.
                let feasible = |b: usize| wait + cost.service_time(b, cold) <= slo;
                let mut pick = 0;
                let (mut lo, mut hi) = (1, cap);
                while lo <= hi {
                    let mid = lo + (hi - lo) / 2;
                    if feasible(mid) {
                        pick = mid;
                        lo = mid + 1;
                    } else {
                        hi = mid - 1;
                    }
                }
                if pick == 0 {
                    // Even a single image misses: salvage throughput.
                    pick = cap;
                }
                BatchDecision::Dispatch(pick)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::inception::inception_v3;
    use neural_cache::SystemConfig;

    fn cost() -> BatchCostModel {
        BatchCostModel::new(&SystemConfig::xeon_e5_2697_v3(), &inception_v3())
    }

    /// Base latency budget handed to every `decide` call (the
    /// `ServeConfig::slo` stand-in).
    fn base_slo() -> SimTime {
        SimTime::from_millis(100.0)
    }

    #[test]
    fn fixed_waits_for_a_full_batch_unless_draining() {
        let p = BatchPolicy::Fixed { size: 8 };
        let c = cost();
        let t = SimTime::from_secs(1.0);
        assert_eq!(
            p.decide(t, 3, t, false, false, base_slo(), &c),
            BatchDecision::Wait
        );
        assert_eq!(
            p.decide(t, 8, t, false, false, base_slo(), &c),
            BatchDecision::Dispatch(8)
        );
        assert_eq!(
            p.decide(t, 12, t, false, false, base_slo(), &c),
            BatchDecision::Dispatch(8)
        );
        assert_eq!(
            p.decide(t, 3, t, true, false, base_slo(), &c),
            BatchDecision::Dispatch(3)
        );
        assert_eq!(p.max_batch(), 8);
    }

    #[test]
    fn max_wait_times_out_the_oldest_request() {
        let p = BatchPolicy::MaxWait {
            max_batch: 16,
            max_wait: SimTime::from_millis(5.0),
        };
        let c = cost();
        let arrived = SimTime::from_secs(1.0);
        let deadline = arrived + SimTime::from_millis(5.0);
        assert_eq!(
            p.decide(
                SimTime::from_secs(1.001),
                4,
                arrived,
                false,
                false,
                base_slo(),
                &c
            ),
            BatchDecision::WaitUntil(deadline)
        );
        assert_eq!(
            p.decide(deadline, 4, arrived, false, false, base_slo(), &c),
            BatchDecision::Dispatch(4)
        );
        assert_eq!(
            p.decide(
                SimTime::from_secs(1.001),
                16,
                arrived,
                false,
                false,
                base_slo(),
                &c
            ),
            BatchDecision::Dispatch(16)
        );
        assert_eq!(
            p.decide(
                SimTime::from_secs(1.001),
                2,
                arrived,
                true,
                false,
                base_slo(),
                &c
            ),
            BatchDecision::Dispatch(2)
        );
    }

    #[test]
    fn slo_adaptive_prices_the_cold_filter_load() {
        let c = cost();
        let p = BatchPolicy::SloAdaptive { max_batch: 64 };
        let now = SimTime::from_secs(2.0);
        let pick = |cold: bool| match p.decide(now, 64, now, false, cold, base_slo(), &c) {
            BatchDecision::Dispatch(n) => n,
            other => panic!("adaptive policy always dispatches, got {other:?}"),
        };
        let (warm, cold) = (pick(false), pick(true));
        assert!(
            cold < warm,
            "a cold slice must shrink the feasible batch: cold {cold} vs warm {warm}"
        );
        assert!(
            c.service_time(cold, true) <= base_slo(),
            "cold pick meets the SLO"
        );
    }

    #[test]
    fn slo_adaptive_grows_batches_within_the_budget() {
        let c = cost();
        let p = BatchPolicy::SloAdaptive { max_batch: 64 };
        let now = SimTime::from_secs(2.0);
        // Fresh queue: pick the largest batch meeting the SLO from now.
        let BatchDecision::Dispatch(fresh) = p.decide(now, 64, now, false, false, base_slo(), &c)
        else {
            panic!("adaptive policy always dispatches");
        };
        assert!(fresh >= 1);
        assert!(c.service_time(fresh, false) <= base_slo());
        if fresh < 64 {
            assert!(
                c.service_time(fresh + 1, false) > base_slo(),
                "largest feasible"
            );
        }
        // An old queue shrinks the pick.
        let aged = now - SimTime::from_millis(60.0);
        let BatchDecision::Dispatch(old_pick) =
            p.decide(now, 64, aged, false, false, base_slo(), &c)
        else {
            panic!("adaptive policy always dispatches");
        };
        assert!(old_pick <= fresh);
        // A hopeless SLO salvages throughput with the full cap.
        let p_tight = BatchPolicy::SloAdaptive { max_batch: 4 };
        assert_eq!(
            p_tight.decide(now, 10, aged, false, false, SimTime::from_millis(0.001), &c),
            BatchDecision::Dispatch(4)
        );
        // Queue shorter than the cap bounds the pick.
        let BatchDecision::Dispatch(n) = p.decide(now, 2, now, false, false, base_slo(), &c) else {
            panic!("adaptive policy always dispatches");
        };
        assert!(n <= 2);
    }
}
