//! Request arrival traces: open-loop Poisson, bursty (Markov-modulated
//! Poisson), and closed-loop client populations, all generated from an
//! explicitly seeded RNG so every simulation is reproducible bit-for-bit.

use nc_dnn::workload::{default_traffic_mix, draw_class, TrafficClass};
use nc_geometry::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One inference request presented to the admission queue.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Issue-order id (unique, dense from 0).
    pub id: u64,
    /// Arrival time at the admission queue.
    pub arrival: SimTime,
    /// Traffic-class index into the trace's [`TrafficClass`] mix.
    pub class: u8,
    /// Activation density of this request's input in `[0, 1)`: 0 means
    /// activations as sparse as the serving cost model's measured profile,
    /// 1 means fully dense. Under a dynamic-sparsity
    /// `neural_cache::BatchCostModel` the request's marginal service time
    /// scales with it (activation-dependent latency); static cost models
    /// ignore it. Derived deterministically from `(trace seed, id)` by a
    /// hash — **not** drawn from the arrival RNG, so activation pricing
    /// never perturbs arrival times of existing seeded traces.
    pub act: f64,
}

/// The arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceKind {
    /// Open-loop Poisson arrivals at a constant rate (requests/second).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Bursty arrivals: a two-state Markov-modulated Poisson process that
    /// alternates between a low and a high rate with exponentially
    /// distributed dwell times (exploits the memorylessness of the
    /// exponential: draws restart exactly at state switches).
    Bursty {
        /// Arrival rate in the quiet state (requests/second).
        low_rps: f64,
        /// Arrival rate in the burst state (requests/second).
        high_rps: f64,
        /// Mean dwell time in each state, seconds.
        mean_dwell_s: f64,
    },
    /// Closed-loop clients: each client issues one request, waits for its
    /// completion, thinks for an exponential time, and issues the next.
    /// Arrivals beyond the initial wave are generated *inside* the
    /// simulator, driven by completions.
    ClosedLoop {
        /// Concurrent client count.
        clients: usize,
        /// Mean think time between a completion and the next issue,
        /// seconds.
        think_s: f64,
    },
}

/// A fully specified trace: process shape, request budget, seed, and the
/// traffic-class mix each request's class is drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Arrival process.
    pub kind: TraceKind,
    /// Total requests the trace issues.
    pub requests: usize,
    /// RNG seed; identical seeds give identical traces.
    pub seed: u64,
    /// Traffic-class mix (shares sum to 1; priorities order the queue).
    pub mix: Vec<TrafficClass>,
}

impl TraceConfig {
    /// Poisson trace with the default traffic mix.
    #[must_use]
    pub fn poisson(rate_rps: f64, requests: usize, seed: u64) -> Self {
        TraceConfig {
            kind: TraceKind::Poisson { rate_rps },
            requests,
            seed,
            mix: default_traffic_mix(),
        }
    }

    /// Bursty (MMPP-2) trace with the default traffic mix.
    #[must_use]
    pub fn bursty(
        low_rps: f64,
        high_rps: f64,
        mean_dwell_s: f64,
        requests: usize,
        seed: u64,
    ) -> Self {
        TraceConfig {
            kind: TraceKind::Bursty {
                low_rps,
                high_rps,
                mean_dwell_s,
            },
            requests,
            seed,
            mix: default_traffic_mix(),
        }
    }

    /// Closed-loop trace with the default traffic mix.
    #[must_use]
    pub fn closed_loop(clients: usize, think_s: f64, requests: usize, seed: u64) -> Self {
        TraceConfig {
            kind: TraceKind::ClosedLoop { clients, think_s },
            requests,
            seed,
            mix: default_traffic_mix(),
        }
    }

    /// Nominal offered load of the open-loop kinds (requests/second);
    /// `None` for closed-loop traces, whose rate emerges from service
    /// times.
    #[must_use]
    pub fn nominal_rate_rps(&self) -> Option<f64> {
        match self.kind {
            TraceKind::Poisson { rate_rps } => Some(rate_rps),
            // Equal mean dwell in both states: the long-run rate is the
            // plain average.
            TraceKind::Bursty {
                low_rps, high_rps, ..
            } => Some(0.5 * (low_rps + high_rps)),
            TraceKind::ClosedLoop { .. } => None,
        }
    }
}

/// Draws an exponential inter-event time with the given rate (events per
/// second) from one uniform draw.
fn exp_draw(rng: &mut SmallRng, rate: f64) -> f64 {
    exp_from_uniform(rng.gen_range(0.0..1.0), rate)
}

/// Maps one uniform draw to an exponential inter-event time via inverse
/// transform sampling, guarding the logarithm's pole: a draw at (or
/// rounded to) exactly 1.0 would take `ln(0) = -inf` and produce an
/// **infinite** inter-arrival or think time, silently stalling closed-loop
/// clients and MMPP dwell switches forever. The survival term is clamped
/// away from zero, capping the draw at a large-but-finite multiple of the
/// mean (`-ln(MIN_POSITIVE)/rate` ~ 708 means).
fn exp_from_uniform(u: f64, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let survival = (1.0 - u).max(f64::MIN_POSITIVE);
    -survival.ln() / rate
}

/// Deterministic per-request activation density in `[0, 1)`: a splitmix64
/// hash of `(trace seed, request id)`. Deliberately independent of the
/// arrival RNG stream (see [`Request::act`]).
fn act_density(seed: u64, id: u64) -> f64 {
    let mut z = seed
        .wrapping_add(0x41_4354)
        .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The stateful arrival process a simulation consumes: open-loop kinds
/// pre-generate their whole arrival sequence; closed-loop traces issue an
/// initial wave and then one request per completion, drawn from the same
/// seeded RNG in completion order (so the full trace stays deterministic).
#[derive(Debug)]
pub struct ArrivalProcess {
    rng: SmallRng,
    mix: Vec<TrafficClass>,
    seed: u64,
    issued: u64,
    budget: u64,
    closed: Option<f64>, // think_s when closed-loop
}

impl ArrivalProcess {
    /// Builds the process and returns `(process, initial arrivals sorted by
    /// time)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace (`requests == 0`), an empty mix, or
    /// non-positive rates/think times/client counts.
    #[must_use]
    pub fn new(config: &TraceConfig) -> (Self, Vec<Request>) {
        assert!(config.requests > 0, "trace must issue at least one request");
        assert!(!config.mix.is_empty(), "traffic mix must not be empty");
        let mut process = ArrivalProcess {
            rng: SmallRng::seed_from_u64(config.seed),
            mix: config.mix.clone(),
            seed: config.seed,
            issued: 0,
            budget: config.requests as u64,
            closed: None,
        };
        let initial = match config.kind {
            TraceKind::Poisson { rate_rps } => {
                process.gen_open_loop(|rng, _| exp_draw(rng, rate_rps))
            }
            TraceKind::Bursty {
                low_rps,
                high_rps,
                mean_dwell_s,
            } => {
                assert!(mean_dwell_s > 0.0, "dwell time must be positive");
                process.gen_bursty(low_rps, high_rps, mean_dwell_s)
            }
            TraceKind::ClosedLoop { clients, think_s } => {
                assert!(clients > 0, "closed loop needs at least one client");
                assert!(think_s > 0.0, "think time must be positive");
                process.closed = Some(think_s);
                let wave = clients.min(config.requests);
                let mut initial: Vec<Request> = (0..wave)
                    .map(|_| {
                        let t = exp_draw(&mut process.rng, 1.0 / think_s);
                        let r = process.make_request(SimTime::from_secs(t));
                        r.expect("initial wave within budget")
                    })
                    .collect();
                initial.sort_by(|a, b| {
                    a.arrival
                        .as_secs_f64()
                        .total_cmp(&b.arrival.as_secs_f64())
                        .then(a.id.cmp(&b.id))
                });
                initial
            }
        };
        (process, initial)
    }

    /// Whether completions generate further arrivals (closed-loop only).
    #[must_use]
    pub fn is_closed_loop(&self) -> bool {
        self.closed.is_some()
    }

    /// Requests issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Whether the process can still issue requests.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.issued >= self.budget
    }

    /// Closed-loop reaction to one completed request at `now`: the client
    /// thinks, then issues the next request (while budget remains).
    /// Open-loop processes never react to completions.
    pub fn on_completion(&mut self, now: SimTime) -> Option<Request> {
        let think_s = self.closed?;
        if self.exhausted() {
            return None;
        }
        let think = exp_draw(&mut self.rng, 1.0 / think_s);
        self.make_request(now + SimTime::from_secs(think))
    }

    fn make_request(&mut self, arrival: SimTime) -> Option<Request> {
        if self.exhausted() {
            return None;
        }
        let id = self.issued;
        self.issued += 1;
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let class = draw_class(&self.mix, u) as u8;
        Some(Request {
            id,
            arrival,
            class,
            act: act_density(self.seed, id),
        })
    }

    fn gen_open_loop(&mut self, mut inter: impl FnMut(&mut SmallRng, f64) -> f64) -> Vec<Request> {
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(self.budget as usize);
        while !self.exhausted() {
            t += inter(&mut self.rng, t);
            let r = self
                .make_request(SimTime::from_secs(t))
                .expect("budget checked");
            out.push(r);
        }
        out
    }

    fn gen_bursty(&mut self, low_rps: f64, high_rps: f64, mean_dwell_s: f64) -> Vec<Request> {
        let mut t = 0.0f64;
        let mut high = false;
        let mut switch = exp_draw(&mut self.rng, 1.0 / mean_dwell_s);
        let mut out = Vec::with_capacity(self.budget as usize);
        while !self.exhausted() {
            // Memorylessness: a draw that crosses the modulation switch is
            // discarded and redrawn from the switch point at the new rate —
            // exactly the MMPP semantics.
            loop {
                let rate = if high { high_rps } else { low_rps };
                let dt = exp_draw(&mut self.rng, rate);
                if t + dt <= switch {
                    t += dt;
                    break;
                }
                t = switch;
                high = !high;
                switch = t + exp_draw(&mut self.rng, 1.0 / mean_dwell_s);
            }
            let r = self
                .make_request(SimTime::from_secs(t))
                .expect("budget checked");
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_traces_are_seeded_and_sorted() {
        let config = TraceConfig::poisson(500.0, 200, 42);
        let (_, a) = ArrivalProcess::new(&config);
        let (_, b) = ArrivalProcess::new(&config);
        assert_eq!(a, b, "same seed, same trace");
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.windows(2).all(|w| w[0].id < w[1].id));
        let (_, c) = ArrivalProcess::new(&TraceConfig::poisson(500.0, 200, 43));
        assert_ne!(a, c, "different seed, different trace");
        // Mean inter-arrival within 20% of 1/rate over 200 draws.
        let span = a.last().unwrap().arrival.as_secs_f64();
        let measured = 200.0 / span;
        assert!((measured / 500.0 - 1.0).abs() < 0.2, "rate {measured:.1}");
    }

    #[test]
    fn bursty_traces_modulate_the_rate() {
        let config = TraceConfig::bursty(50.0, 2000.0, 0.05, 400, 7);
        let (_, reqs) = ArrivalProcess::new(&config);
        assert_eq!(reqs.len(), 400);
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Coefficient of variation of inter-arrivals must exceed a plain
        // Poisson's (~1): burstiness shows up as dispersion.
        let gaps: Vec<f64> = reqs
            .windows(2)
            .map(|w| (w[1].arrival - w[0].arrival).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.2, "bursty CV {cv:.2} should exceed Poisson's 1.0");
        assert_eq!(config.nominal_rate_rps(), Some(1025.0));
    }

    #[test]
    fn closed_loop_issues_a_wave_then_one_per_completion() {
        let config = TraceConfig::closed_loop(8, 0.01, 20, 11);
        let (mut p, initial) = ArrivalProcess::new(&config);
        assert_eq!(initial.len(), 8, "one in-flight request per client");
        assert!(p.is_closed_loop());
        assert_eq!(p.issued(), 8);
        let mut now = SimTime::from_secs(1.0);
        let mut issued = initial.len();
        while let Some(r) = p.on_completion(now) {
            assert!(r.arrival > now, "next issue after think time");
            issued += 1;
            now = r.arrival;
        }
        assert_eq!(issued, 20, "budget exhausts the loop");
        assert!(p.exhausted());
        // Open-loop processes never spawn on completion.
        let (mut open, _) = ArrivalProcess::new(&TraceConfig::poisson(100.0, 5, 3));
        assert!(open.on_completion(SimTime::from_secs(1.0)).is_none());
    }

    #[test]
    fn classes_follow_the_mix() {
        let config = TraceConfig::poisson(1000.0, 2000, 5);
        let (_, reqs) = ArrivalProcess::new(&config);
        let interactive = reqs.iter().filter(|r| r.class == 0).count();
        let share = interactive as f64 / reqs.len() as f64;
        assert!((share - 0.7).abs() < 0.05, "interactive share {share:.2}");
        assert!(reqs.iter().all(|r| (r.class as usize) < config.mix.len()));
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn empty_traces_are_rejected() {
        let _ = ArrivalProcess::new(&TraceConfig::poisson(10.0, 0, 1));
    }

    #[test]
    fn exp_draw_survives_a_boundary_uniform() {
        // Regression: a uniform draw at (or rounded to) exactly 1.0 hits
        // ln(0) = -inf — an infinite inter-arrival/think time that would
        // stall closed-loop clients and MMPP dwell switches forever. The
        // clamp caps it at a finite multiple of the mean.
        let worst = exp_from_uniform(1.0, 100.0);
        assert!(worst.is_finite(), "boundary draw must stay finite");
        assert!(worst > 0.0);
        // Even a u past 1.0 (float noise upstream) stays finite.
        assert!(exp_from_uniform(1.0 + 1e-16, 100.0).is_finite());
        // The clamp sits far beyond any plausible draw: ~708 means.
        assert!(worst < 10.0, "708 means at rate 100 is ~7.08 s");
        // Ordinary draws are untouched by the guard.
        assert!((exp_from_uniform(0.5, 2.0) - 0.5f64.ln().abs() / 2.0).abs() < 1e-12);
        assert_eq!(exp_from_uniform(0.0, 5.0), 0.0, "u = 0 is a zero wait");
    }

    #[test]
    fn act_densities_are_deterministic_and_uniform_ish() {
        let config = TraceConfig::poisson(500.0, 400, 42);
        let (_, a) = ArrivalProcess::new(&config);
        let (_, b) = ArrivalProcess::new(&config);
        assert_eq!(a, b, "same seed, same densities");
        assert!(a.iter().all(|r| (0.0..1.0).contains(&r.act)));
        let mean = a.iter().map(|r| r.act).sum::<f64>() / a.len() as f64;
        assert!((mean - 0.5).abs() < 0.08, "act mean {mean:.3}");
        // Density is a function of (seed, id), not of the arrival RNG:
        // a different seed changes it.
        let (_, c) = ArrivalProcess::new(&TraceConfig::poisson(500.0, 400, 43));
        assert!(a.iter().zip(&c).any(|(x, y)| x.act != y.act));
    }
}
