//! The deterministic discrete-event serving simulator: an admission queue
//! with priority classes, a dynamic batcher, and a multi-slice scheduler
//! dispatching batches onto independent cache slices, all costed through
//! the calibrated [`BatchCostModel`].
//!
//! Determinism: events order by `(time, sequence number)` with a total
//! order on time, every RNG draw happens in event-pop order, and the
//! timing substrate is engine-independent (the `SystemConfig::parallelism`
//! knob changes host wall-clock only), so identical seeds produce
//! byte-identical [`ServingTrace`] logs under every execution engine.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use nc_geometry::SimTime;
use nc_telemetry::{Level, Telemetry, Value};
use neural_cache::{BatchCostModel, SystemConfig};

use crate::batcher::{BatchDecision, BatchPolicy};
use crate::metrics::{Completion, MetricsCollector, ServingSummary};
use crate::trace::{ArrivalProcess, Request, TraceConfig};

/// Serving-side configuration: the timing substrate, replica count, batch
/// policy, admission bound, and the latency SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Timing substrate (geometry, cost model, engine, sparsity).
    pub system: SystemConfig,
    /// Independent cache slices batches dispatch onto. Each slice holds its
    /// own stationary copy of the weights (Section IV-E), pays the filter
    /// load on its first batch, and serves warm batches thereafter.
    pub slices: usize,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Admission-queue bound: arrivals beyond this many waiting requests
    /// are dropped.
    pub queue_capacity: usize,
    /// Base latency SLO; each traffic class scales it by its `slo_scale`.
    pub slo: SimTime,
}

impl ServeConfig {
    /// A two-slice serving setup with sane defaults: SLO-adaptive batching
    /// up to 32, a 512-deep admission queue, and a 100 ms base SLO.
    #[must_use]
    pub fn default_two_slice() -> Self {
        ServeConfig {
            system: SystemConfig::xeon_e5_2697_v3(),
            slices: 2,
            policy: BatchPolicy::SloAdaptive { max_batch: 32 },
            queue_capacity: 512,
            slo: SimTime::from_millis(100.0),
        }
    }
}

/// One record of the deterministic serving log. Times serialize with full
/// bit precision so byte identity means trajectory identity.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request reached the admission queue.
    Arrive {
        /// Event time.
        t: SimTime,
        /// Request id.
        id: u64,
        /// Traffic-class index.
        class: u8,
    },
    /// A request was dropped at admission (queue full).
    Drop {
        /// Event time.
        t: SimTime,
        /// Request id.
        id: u64,
    },
    /// A batch left the queue for a slice.
    Dispatch {
        /// Event time.
        t: SimTime,
        /// Slice index.
        slice: usize,
        /// Whether this batch pays the one-time filter load.
        cold: bool,
        /// Request ids in dispatch order.
        ids: Vec<u64>,
    },
    /// A batch completed on a slice.
    Complete {
        /// Event time.
        t: SimTime,
        /// Slice index.
        slice: usize,
        /// Request ids in dispatch order.
        ids: Vec<u64>,
    },
}

/// The deterministic event log of one simulation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingTrace {
    /// Events in simulation order.
    pub events: Vec<TraceEvent>,
}

impl ServingTrace {
    /// Renders the log as text with full-precision times: two runs are
    /// trajectory-identical iff their logs are byte-identical.
    #[must_use]
    pub fn to_log(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let t = |time: SimTime| format!("{:.17e}", time.as_secs_f64());
        for e in &self.events {
            match e {
                TraceEvent::Arrive { t: at, id, class } => {
                    let _ = writeln!(out, "A t={} id={id} class={class}", t(*at));
                }
                TraceEvent::Drop { t: at, id } => {
                    let _ = writeln!(out, "X t={} id={id}", t(*at));
                }
                TraceEvent::Dispatch {
                    t: at,
                    slice,
                    cold,
                    ids,
                } => {
                    let _ = writeln!(
                        out,
                        "B t={} slice={slice} cold={} n={} ids={ids:?}",
                        t(*at),
                        u8::from(*cold),
                        ids.len()
                    );
                }
                TraceEvent::Complete { t: at, slice, ids } => {
                    let _ = writeln!(
                        out,
                        "C t={} slice={slice} n={} ids={ids:?}",
                        t(*at),
                        ids.len()
                    );
                }
            }
        }
        out
    }
}

/// Everything one simulation produces: the metrics summary and the
/// deterministic event log.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingOutcome {
    /// Aggregated serving metrics.
    pub summary: ServingSummary,
    /// Deterministic event log.
    pub trace: ServingTrace,
}

#[derive(Debug)]
enum EventKind {
    Arrival(Request),
    BatchDone { slice: usize },
    Timer,
}

#[derive(Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the earliest (time, seq)
        // pops first. Times are finite and non-negative, so total_cmp is a
        // total order consistent with numeric order.
        self.time
            .as_secs_f64()
            .total_cmp(&other.time.as_secs_f64())
            .then(self.seq.cmp(&other.seq))
            .reverse()
    }
}

#[derive(Debug)]
struct SliceState {
    busy_until: SimTime,
    busy: bool,
    cold: bool,
    busy_time: SimTime,
    dispatched_at: SimTime,
    inflight: Vec<Request>,
}

/// Runs one deterministic serving simulation to completion: every issued
/// request either completes or is dropped before the simulator returns
/// (open-loop arrivals are pre-scheduled; closed-loop clients re-issue on
/// completion until the trace budget is spent).
///
/// Plans `model` once via [`BatchCostModel`]; callers simulating many
/// points against the same `(system, model)` pair should build the cost
/// model themselves and use [`simulate_with_cost`].
///
/// # Panics
///
/// Panics on a zero-slice or zero-capacity configuration, or an empty
/// trace.
#[must_use]
pub fn simulate(
    config: &ServeConfig,
    model: &nc_dnn::Model,
    trace_config: &TraceConfig,
) -> ServingOutcome {
    simulate_with_cost(
        config,
        &BatchCostModel::new(&config.system, model),
        trace_config,
    )
}

/// [`simulate`] against a prebuilt [`BatchCostModel`], so sweeps over many
/// traces/policies plan the model once instead of once per point.
///
/// The cost model is the sole timing authority here: `config.system` is
/// **not** consulted (only [`simulate`] reads it, to build the cost
/// model), so pass a cost model built from the same system you report the
/// results under.
///
/// # Panics
///
/// Panics on a zero-slice or zero-capacity configuration, or an empty
/// trace.
#[must_use]
pub fn simulate_with_cost(
    config: &ServeConfig,
    cost: &BatchCostModel,
    trace_config: &TraceConfig,
) -> ServingOutcome {
    simulate_traced(config, cost, trace_config, &Telemetry::disabled())
}

/// [`simulate_with_cost`] with a telemetry sink attached: the simulation
/// itself is **identical** (same trajectory, same summary, byte-identical
/// [`ServingTrace`]) — the sink only observes it.
///
/// At [`Level::Spans`] and above, every [`TraceEvent`] the log records is
/// mirrored by **exactly one** telemetry record in category
/// `serving.event` — `arrive`/`drop` instants on the queue track,
/// `dispatch` instants and a `batch` span (dispatch → completion) on the
/// owning slice's track — so `record_count("serving.event")` equals
/// `trace.events.len()` exactly. At [`Level::Detail`] each dispatched
/// request additionally gets a `serving.request`/`queue-wait` span
/// (arrival → dispatch). Counters (`serving.arrivals` / `.drops` /
/// `.dispatches` / `.completions`), the `serving.batch_size` histogram and
/// end-of-run summary gauges are recorded at every enabled level.
///
/// # Panics
///
/// Panics on a zero-slice or zero-capacity configuration, or an empty
/// trace.
#[must_use]
pub fn simulate_traced(
    config: &ServeConfig,
    cost: &BatchCostModel,
    trace_config: &TraceConfig,
    tel: &Telemetry,
) -> ServingOutcome {
    assert!(config.slices > 0, "need at least one slice");
    assert!(config.queue_capacity > 0, "queue capacity must be positive");
    let spans_on = tel.at(Level::Spans);
    let queue_track = tel.track("serving", "queue");
    let slice_tracks: Vec<_> = (0..config.slices)
        .map(|i| tel.track("serving", &format!("slice {i}")))
        .collect();
    let (mut source, initial) = ArrivalProcess::new(trace_config);

    let classes = trace_config.mix.len();
    // Dequeue order: classes sorted by admission priority, stable on index.
    let mut class_order: Vec<usize> = (0..classes).collect();
    class_order.sort_by_key(|&i| (trace_config.mix[i].priority, i));

    let mut events = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |events: &mut BinaryHeap<Event>, seq: &mut u64, time: SimTime, kind: EventKind| {
        *seq += 1;
        events.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };
    let mut arrivals_outstanding = 0usize;
    for r in initial {
        push(&mut events, &mut seq, r.arrival, EventKind::Arrival(r));
        arrivals_outstanding += 1;
    }

    let mut queues: Vec<VecDeque<Request>> = (0..classes).map(|_| VecDeque::new()).collect();
    let mut queued_total = 0usize;
    let mut slices: Vec<SliceState> = (0..config.slices)
        .map(|_| SliceState {
            busy_until: SimTime::ZERO,
            busy: false,
            cold: true,
            busy_time: SimTime::ZERO,
            dispatched_at: SimTime::ZERO,
            inflight: Vec::new(),
        })
        .collect();

    let mut metrics = MetricsCollector::new(config, trace_config);
    let mut log = ServingTrace::default();
    let mut now = SimTime::ZERO;
    // Makespan is the last *real* event (arrival/completion/dispatch): a
    // timer whose batch already dispatched is a no-op and must not stretch
    // the horizon goodput and utilization divide by.
    let mut last_activity = SimTime::ZERO;
    // Earliest pending timer, to avoid piling up duplicate timer events
    // (one per re-evaluation while holding).
    let mut pending_timer: Option<SimTime> = None;

    while let Some(event) = events.pop() {
        debug_assert!(event.time >= now, "time must not run backwards");
        metrics.observe_queue_depth(queued_total, event.time - now);
        now = event.time;

        match event.kind {
            EventKind::Arrival(r) => {
                last_activity = now;
                arrivals_outstanding -= 1;
                metrics.on_arrival(&r);
                log.events.push(TraceEvent::Arrive {
                    t: now,
                    id: r.id,
                    class: r.class,
                });
                if spans_on {
                    tel.instant(
                        queue_track,
                        "serving.event",
                        "arrive",
                        now.as_secs_f64(),
                        vec![
                            ("id", Value::U64(r.id)),
                            ("class", Value::U64(u64::from(r.class))),
                        ],
                    );
                }
                tel.counter_add("serving.arrivals", 1);
                if queued_total >= config.queue_capacity {
                    metrics.on_drop(&r);
                    log.events.push(TraceEvent::Drop { t: now, id: r.id });
                    if spans_on {
                        tel.instant(
                            queue_track,
                            "serving.event",
                            "drop",
                            now.as_secs_f64(),
                            vec![("id", Value::U64(r.id))],
                        );
                    }
                    tel.counter_add("serving.drops", 1);
                    // A dropped closed-loop request still frees its client.
                    if let Some(next) = source.on_completion(now) {
                        arrivals_outstanding += 1;
                        push(
                            &mut events,
                            &mut seq,
                            next.arrival,
                            EventKind::Arrival(next),
                        );
                    }
                } else {
                    queued_total += 1;
                    queues[r.class as usize].push_back(r);
                }
            }
            EventKind::BatchDone { slice } => {
                last_activity = now;
                let s = &mut slices[slice];
                s.busy = false;
                let batch = std::mem::take(&mut s.inflight);
                let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
                log.events.push(TraceEvent::Complete { t: now, slice, ids });
                if spans_on {
                    // The batch's residency on its slice, dispatch to
                    // completion: in simulated time its duration is exactly
                    // the priced service time (`busy_until - dispatched_at`).
                    tel.span(
                        slice_tracks[slice],
                        "serving.event",
                        "batch",
                        s.dispatched_at.as_secs_f64(),
                        (now - s.dispatched_at).as_secs_f64(),
                        vec![
                            ("slice", Value::U64(slice as u64)),
                            ("n", Value::U64(batch.len() as u64)),
                        ],
                    );
                }
                tel.counter_add("serving.completions", batch.len() as u64);
                for r in batch {
                    metrics.on_completion(Completion {
                        class: r.class,
                        latency: now - r.arrival,
                    });
                    if let Some(next) = source.on_completion(now) {
                        arrivals_outstanding += 1;
                        push(
                            &mut events,
                            &mut seq,
                            next.arrival,
                            EventKind::Arrival(next),
                        );
                    }
                }
            }
            EventKind::Timer => {
                if pending_timer.is_some_and(|t| t <= now) {
                    pending_timer = None;
                }
            }
        }

        // Scheduler: fill free slices while the policy dispatches.
        loop {
            if queued_total == 0 {
                break;
            }
            let Some(slice_idx) = slices.iter().position(|s| !s.busy) else {
                break;
            };
            let oldest = class_order
                .iter()
                .filter_map(|&c| queues[c].front())
                .map(|r| r.arrival)
                .fold(None, |acc: Option<SimTime>, t| {
                    Some(acc.map_or(t, |a| if t < a { t } else { a }))
                })
                .expect("non-empty queue has an oldest request");
            // No future arrivals can come when none are scheduled and the
            // source either spent its budget or is a closed loop with no
            // in-flight batch to complete (closed-loop arrivals spawn only
            // from completions): holding out for a fuller batch would
            // deadlock, so policies flush.
            let any_busy = slices.iter().any(|s| s.busy);
            let draining = arrivals_outstanding == 0
                && (source.exhausted() || (source.is_closed_loop() && !any_busy));
            match config.policy.decide(
                now,
                queued_total,
                oldest,
                draining,
                slices[slice_idx].cold,
                config.slo,
                cost,
            ) {
                BatchDecision::Dispatch(n) => {
                    last_activity = now;
                    let n = n.min(queued_total).max(1);
                    let mut batch = Vec::with_capacity(n);
                    'take: for &c in &class_order {
                        while let Some(r) = queues[c].pop_front() {
                            batch.push(r);
                            queued_total -= 1;
                            if batch.len() == n {
                                break 'take;
                            }
                        }
                    }
                    let s = &mut slices[slice_idx];
                    // Activation-dependent pricing: each request carries
                    // its input's activation density, and a dynamic-mode
                    // cost model charges dense-activation images more.
                    // Static cost models (zero spread) take the classic
                    // batch-size path without collecting the densities.
                    let service = if cost.image_time_spread() > SimTime::ZERO {
                        let acts: Vec<f64> = batch.iter().map(|r| r.act).collect();
                        cost.service_time_acts(&acts, s.cold)
                    } else {
                        cost.service_time(batch.len(), s.cold)
                    };
                    let cold = s.cold;
                    s.cold = false;
                    s.busy = true;
                    s.busy_until = now + service;
                    s.busy_time += service;
                    s.dispatched_at = now;
                    s.inflight = batch;
                    metrics.on_dispatch(s.inflight.len());
                    log.events.push(TraceEvent::Dispatch {
                        t: now,
                        slice: slice_idx,
                        cold,
                        ids: s.inflight.iter().map(|r| r.id).collect(),
                    });
                    if spans_on {
                        tel.instant(
                            slice_tracks[slice_idx],
                            "serving.event",
                            "dispatch",
                            now.as_secs_f64(),
                            vec![
                                ("slice", Value::U64(slice_idx as u64)),
                                ("n", Value::U64(s.inflight.len() as u64)),
                                ("cold", Value::U64(u64::from(cold))),
                            ],
                        );
                        if tel.at(Level::Detail) {
                            for r in &s.inflight {
                                tel.span(
                                    queue_track,
                                    "serving.request",
                                    "queue-wait",
                                    r.arrival.as_secs_f64(),
                                    (now - r.arrival).as_secs_f64(),
                                    vec![
                                        ("id", Value::U64(r.id)),
                                        ("class", Value::U64(u64::from(r.class))),
                                    ],
                                );
                            }
                        }
                    }
                    tel.counter_add("serving.dispatches", 1);
                    tel.histogram_record("serving.batch_size", s.inflight.len() as f64);
                    push(
                        &mut events,
                        &mut seq,
                        s.busy_until,
                        EventKind::BatchDone { slice: slice_idx },
                    );
                }
                BatchDecision::WaitUntil(deadline) => {
                    // One pending timer suffices: re-evaluations while
                    // holding would otherwise push a duplicate per event.
                    if deadline > now && pending_timer.is_none_or(|t| deadline < t) {
                        pending_timer = Some(deadline);
                        push(&mut events, &mut seq, deadline, EventKind::Timer);
                    }
                    break;
                }
                BatchDecision::Wait => break,
            }
        }
    }

    debug_assert_eq!(queued_total, 0, "drained simulation leaves no queue");
    // Pending is measured from the simulator's *actual* residual state
    // (queued + in-flight), not derived from the other counters, so the
    // conservation gate can genuinely catch a lost request.
    let pending = queued_total + slices.iter().map(|s| s.inflight.len()).sum::<usize>();
    let summary = metrics.finish(
        last_activity,
        pending,
        &slices.iter().map(|s| s.busy_time).collect::<Vec<_>>(),
    );
    tel.gauge_set("serving.makespan_s", summary.makespan_s);
    tel.gauge_set("serving.goodput_rps", summary.goodput_rps);
    tel.gauge_set("serving.mean_queue_depth", summary.mean_queue_depth);
    tel.gauge_set("serving.p99_ms", summary.p99_ms);
    ServingOutcome {
        summary,
        trace: log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_dnn::inception::inception_v3;

    fn quick_config(policy: BatchPolicy) -> ServeConfig {
        ServeConfig {
            policy,
            ..ServeConfig::default_two_slice()
        }
    }

    #[test]
    fn simulation_drains_and_conserves_requests() {
        let model = inception_v3();
        let trace = TraceConfig::poisson(300.0, 120, 9);
        let out = simulate(
            &quick_config(BatchPolicy::SloAdaptive { max_batch: 32 }),
            &model,
            &trace,
        );
        let s = &out.summary;
        assert_eq!(s.admitted, 120);
        assert_eq!(s.admitted, s.completed + s.dropped + s.pending);
        assert_eq!(s.pending, 0, "drained");
        assert!(s.p99_ms >= s.p50_ms);
        assert!(s.max_ms >= s.p99_ms);
        assert!(s.goodput_rps > 0.0);
        assert!(s.goodput_rps <= s.offered_load_rps + 1e-9);
    }

    #[test]
    fn identical_seeds_are_byte_identical_and_seeds_matter() {
        let model = inception_v3();
        let trace = TraceConfig::bursty(100.0, 1200.0, 0.05, 150, 21);
        let config = quick_config(BatchPolicy::MaxWait {
            max_batch: 16,
            max_wait: SimTime::from_millis(10.0),
        });
        let a = simulate(&config, &model, &trace);
        let b = simulate(&config, &model, &trace);
        assert_eq!(a.trace.to_log(), b.trace.to_log());
        assert_eq!(a.summary, b.summary);
        let other = TraceConfig {
            seed: 22,
            ..trace.clone()
        };
        let c = simulate(&config, &model, &other);
        assert_ne!(a.trace.to_log(), c.trace.to_log());
    }

    #[test]
    fn closed_loop_traces_complete_their_budget() {
        let model = inception_v3();
        let trace = TraceConfig::closed_loop(6, 0.002, 60, 3);
        let out = simulate(
            &quick_config(BatchPolicy::Fixed { size: 4 }),
            &model,
            &trace,
        );
        assert_eq!(out.summary.admitted, 60);
        assert_eq!(out.summary.completed, 60);
        assert_eq!(out.summary.dropped, 0);
        // Every dispatch in the log has a matching completion.
        let dispatched: usize = out
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dispatch { .. }))
            .count();
        let completed_batches: usize = out
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Complete { .. }))
            .count();
        assert_eq!(dispatched, completed_batches);
        assert_eq!(out.summary.batches, dispatched);
    }

    #[test]
    fn tiny_queue_drops_under_overload() {
        let model = inception_v3();
        // 5000 rps >> capacity; queue of 8.
        let trace = TraceConfig::poisson(5000.0, 200, 5);
        let config = ServeConfig {
            queue_capacity: 8,
            slices: 1,
            ..quick_config(BatchPolicy::Fixed { size: 8 })
        };
        let out = simulate(&config, &model, &trace);
        let s = &out.summary;
        assert!(s.dropped > 0, "overload must shed load");
        assert_eq!(s.admitted, s.completed + s.dropped);
        assert!(s.max_queue_depth <= 8);
    }

    #[test]
    fn first_batch_per_slice_is_cold_the_rest_warm() {
        let model = inception_v3();
        let trace = TraceConfig::poisson(800.0, 100, 13);
        let out = simulate(
            &quick_config(BatchPolicy::Fixed { size: 8 }),
            &model,
            &trace,
        );
        let mut cold_seen = [false; 2];
        for e in &out.trace.events {
            if let TraceEvent::Dispatch { slice, cold, .. } = e {
                if *cold {
                    assert!(!cold_seen[*slice], "only the first batch is cold");
                    cold_seen[*slice] = true;
                }
            }
        }
        assert!(cold_seen.iter().any(|&c| c), "someone paid the filter load");
    }

    #[test]
    fn activation_profiled_cost_makes_latency_input_dependent() {
        use nc_dnn::workload::{relu_sparse_conv_model, relu_sparse_input};
        use neural_cache::sparsity::activation_profile;
        use neural_cache::SparsityMode;

        let model = relu_sparse_conv_model(4);
        let input = relu_sparse_input(model.input_shape, 0.7, 2, 6);
        let profile = activation_profile(&model, &input);
        let system = SystemConfig::with_sparsity(SparsityMode::SkipZeroInputs);
        let cost = BatchCostModel::with_profile(&system, &model, &profile);
        assert!(cost.image_time_spread() > nc_geometry::SimTime::ZERO);

        let config = ServeConfig {
            system,
            ..quick_config(BatchPolicy::Fixed { size: 1 })
        };
        let trace = TraceConfig::poisson(50.0, 60, 31);
        let out = simulate_with_cost(&config, &cost, &trace);
        assert_eq!(out.summary.completed, 60);
        assert!(out.summary.conservation_holds());
        // Single-request batches at low load: service time varies with the
        // per-request activation density, so completions are NOT all equal
        // — the first time the serving simulator sees input-dependent
        // latency. (With a zero-spread model every uncontended batch-1
        // service is identical.)
        assert!(
            out.summary.max_ms > out.summary.p50_ms,
            "activation spread must differentiate request latencies: max {} vs p50 {}",
            out.summary.max_ms,
            out.summary.p50_ms
        );
        // Deterministic: same seed, same activation-priced trajectory.
        let again = simulate_with_cost(&config, &cost, &trace);
        assert_eq!(out.trace.to_log(), again.trace.to_log());
        assert_eq!(out.summary, again.summary);
    }

    #[test]
    fn traced_run_mirrors_every_log_event_and_changes_nothing() {
        let model = inception_v3();
        let config = quick_config(BatchPolicy::SloAdaptive { max_batch: 32 });
        let cost = BatchCostModel::new(&config.system, &model);
        let trace = TraceConfig::poisson(400.0, 80, 7);
        let plain = simulate_with_cost(&config, &cost, &trace);

        let tel = Telemetry::enabled(Level::Detail);
        let traced = simulate_traced(&config, &cost, &trace, &tel);
        // The sink is a pure observer: trajectory and summary unchanged.
        assert_eq!(plain.trace.to_log(), traced.trace.to_log());
        assert_eq!(plain.summary, traced.summary);
        // Exactly one telemetry record per logged trace event.
        assert_eq!(
            tel.record_count("serving.event"),
            traced.trace.events.len(),
            "serving.event records must mirror the trace log 1:1"
        );
        // Every dispatched request carries a queue-wait span; the run
        // drains, so dispatched == completed.
        assert_eq!(tel.span_count("serving.request"), traced.summary.completed);
        // Counters reconcile with the summary books exactly.
        assert_eq!(
            tel.counter("serving.arrivals") as usize,
            traced.summary.admitted
        );
        assert_eq!(
            tel.counter("serving.drops") as usize,
            traced.summary.dropped
        );
        assert_eq!(
            tel.counter("serving.completions") as usize,
            traced.summary.completed
        );
        assert_eq!(
            tel.counter("serving.dispatches") as usize,
            traced.summary.batches
        );
        let batch_hist = tel
            .histogram("serving.batch_size")
            .expect("batch histogram");
        assert_eq!(batch_hist.count() as usize, traced.summary.batches);
        // Summary gauges are stored verbatim.
        assert_eq!(
            tel.gauge("serving.makespan_s"),
            Some(traced.summary.makespan_s)
        );
        assert_eq!(tel.gauge("serving.p99_ms"), Some(traced.summary.p99_ms));
        // Batch-residency spans fold to the slices' total busy time (the
        // utilization numerator; tolerance covers the ratio round-trip).
        let busy: f64 = traced
            .summary
            .slice_utilization
            .iter()
            .map(|u| u * traced.summary.makespan_s)
            .sum();
        assert!((tel.sum_dur("serving.event") - busy).abs() <= busy * 1e-9 + 1e-12);

        // Summary level keeps the metrics but records no timeline.
        let quiet = Telemetry::enabled(Level::Summary);
        let again = simulate_traced(&config, &cost, &trace, &quiet);
        assert_eq!(again.summary, traced.summary);
        assert_eq!(quiet.total_spans(), 0);
        assert_eq!(quiet.total_instants(), 0);
        assert_eq!(
            quiet.counter("serving.arrivals") as usize,
            traced.summary.admitted
        );
    }

    #[test]
    fn utilization_and_batches_are_tracked_per_slice() {
        let model = inception_v3();
        let trace = TraceConfig::poisson(600.0, 150, 17);
        let out = simulate(
            &quick_config(BatchPolicy::SloAdaptive { max_batch: 32 }),
            &model,
            &trace,
        );
        let s = &out.summary;
        assert_eq!(s.slice_utilization.len(), 2);
        for &u in &s.slice_utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
        assert!(s.slice_utilization.iter().any(|&u| u > 0.0));
        assert!(s.mean_batch >= 1.0);
    }
}
