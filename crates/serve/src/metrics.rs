//! Serving metrics: latency percentiles, queue-depth statistics, goodput
//! vs offered load, SLO violation rates, and the conservation invariants
//! the bench gate enforces.

use nc_dnn::workload::TrafficClass;
use nc_geometry::SimTime;
use nc_telemetry::TimeWeightedHistogram;

use crate::sim::ServeConfig;
use crate::trace::{Request, TraceConfig};

/// One completed request as seen by the collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Traffic-class index.
    pub class: u8,
    /// Admission-to-completion latency.
    pub latency: SimTime,
}

/// Aggregated result of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSummary {
    /// Requests presented at the admission queue.
    pub admitted: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests dropped at admission (queue full).
    pub dropped: usize,
    /// Requests neither completed nor dropped when the simulation ended
    /// (0 for drained runs; the conservation gate checks
    /// `admitted == completed + dropped + pending`).
    pub pending: usize,
    /// Time of the last event (seconds from simulation start).
    pub makespan_s: f64,
    /// Offered load: admitted requests over the arrival span from t = 0.
    pub offered_load_rps: f64,
    /// Goodput: completed requests over the makespan. Never exceeds the
    /// offered load (completions trail arrivals).
    pub goodput_rps: f64,
    /// Mean completion latency, milliseconds.
    pub mean_ms: f64,
    /// Median completion latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile completion latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile completion latency, milliseconds.
    pub p99_ms: f64,
    /// Worst completion latency, milliseconds.
    pub max_ms: f64,
    /// Completions whose latency exceeded their class-scaled SLO.
    pub slo_violations: usize,
    /// `slo_violations / completed` (0 when nothing completed).
    pub slo_violation_rate: f64,
    /// Time-weighted mean admission-queue depth.
    pub mean_queue_depth: f64,
    /// Peak admission-queue depth.
    pub max_queue_depth: usize,
    /// Time-weighted admission-queue depth distribution: every constant-
    /// depth span contributes its depth weighted by its duration, so the
    /// histogram's weighted mean over the makespan reproduces
    /// [`ServingSummary::mean_queue_depth`] bit-for-bit (the weighted sum
    /// is the same fold, in the same order, as the depth integral).
    pub queue_depth_hist: TimeWeightedHistogram,
    /// Batches dispatched.
    pub batches: usize,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Busy fraction of each slice over the makespan.
    pub slice_utilization: Vec<f64>,
    /// Completions per traffic class.
    pub per_class_completed: Vec<usize>,
}

impl ServingSummary {
    /// The request-conservation invariant the bench gate enforces.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.admitted == self.completed + self.dropped + self.pending
    }

    /// The goodput bound the bench gate enforces (goodput can never exceed
    /// offered load; tolerance covers the division).
    #[must_use]
    pub fn goodput_bounded(&self) -> bool {
        self.goodput_rps <= self.offered_load_rps * (1.0 + 1e-9) + 1e-9
    }
}

/// Streaming metrics collector the simulator feeds.
#[derive(Debug)]
pub struct MetricsCollector {
    mix: Vec<TrafficClass>,
    base_slo: SimTime,
    admitted: usize,
    dropped: usize,
    latencies_ms: Vec<f64>,
    per_class_completed: Vec<usize>,
    slo_violations: usize,
    last_arrival: SimTime,
    depth_integral: f64,
    depth_hist: TimeWeightedHistogram,
    max_queue_depth: usize,
    batches: usize,
    batched_requests: usize,
}

impl MetricsCollector {
    /// New collector for one simulation.
    #[must_use]
    pub fn new(config: &ServeConfig, trace: &TraceConfig) -> Self {
        MetricsCollector {
            mix: trace.mix.clone(),
            base_slo: config.slo,
            admitted: 0,
            dropped: 0,
            latencies_ms: Vec::with_capacity(trace.requests),
            per_class_completed: vec![0; trace.mix.len()],
            slo_violations: 0,
            last_arrival: SimTime::ZERO,
            depth_integral: 0.0,
            depth_hist: TimeWeightedHistogram::new(),
            max_queue_depth: 0,
            batches: 0,
            batched_requests: 0,
        }
    }

    /// Records a request reaching the admission queue.
    pub fn on_arrival(&mut self, r: &Request) {
        self.admitted += 1;
        self.last_arrival = self.last_arrival.max(r.arrival);
    }

    /// Records an admission drop.
    pub fn on_drop(&mut self, _r: &Request) {
        self.dropped += 1;
    }

    /// Records a dispatched batch of `n` requests.
    pub fn on_dispatch(&mut self, n: usize) {
        self.batches += 1;
        self.batched_requests += n;
    }

    /// Records one completed request.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite latency: a NaN would silently poison the
    /// percentile ranks downstream (`total_cmp` sorts NaN above every real
    /// latency, so p99/max would report NaN-adjacent garbage), so it is
    /// rejected at the door.
    pub fn on_completion(&mut self, c: Completion) {
        let latency_ms = c.latency.as_millis_f64();
        assert!(
            latency_ms.is_finite(),
            "non-finite completion latency {latency_ms} for class {}",
            c.class
        );
        self.latencies_ms.push(latency_ms);
        if let Some(count) = self.per_class_completed.get_mut(c.class as usize) {
            *count += 1;
        }
        let scale = self
            .mix
            .get(c.class as usize)
            .map_or(1.0, |class| class.slo_scale);
        if c.latency.as_secs_f64() > self.base_slo.as_secs_f64() * scale {
            self.slo_violations += 1;
        }
    }

    /// Accumulates the queue-depth integral over a span at constant depth.
    ///
    /// The same `(depth, span)` sample feeds both the scalar integral and
    /// the time-weighted histogram — identical product, identical addition
    /// order — which is what keeps the histogram's weighted sum equal to
    /// the integral bit-for-bit rather than merely close.
    pub fn observe_queue_depth(&mut self, depth: usize, span: SimTime) {
        self.depth_integral += depth as f64 * span.as_secs_f64();
        self.depth_hist.observe(depth as f64, span.as_secs_f64());
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }

    /// Finalizes the summary at simulation end. `pending` is the
    /// simulator's **measured** residual work (queued + in-flight) rather
    /// than a value derived from the other counters, so
    /// [`ServingSummary::conservation_holds`] can genuinely fail when a
    /// request is lost.
    #[must_use]
    pub fn finish(
        self,
        makespan: SimTime,
        pending: usize,
        slice_busy: &[SimTime],
    ) -> ServingSummary {
        debug_assert_eq!(
            self.depth_hist.weighted_sum(),
            self.depth_integral,
            "histogram weighted sum must reproduce the depth integral bit-for-bit"
        );
        let completed = self.latencies_ms.len();
        let mut sorted = self.latencies_ms;
        sorted.sort_by(f64::total_cmp);
        let makespan_s = makespan.as_secs_f64();
        let arrival_span = self.last_arrival.as_secs_f64();
        ServingSummary {
            admitted: self.admitted,
            completed,
            dropped: self.dropped,
            pending,
            makespan_s,
            offered_load_rps: if arrival_span > 0.0 {
                self.admitted as f64 / arrival_span
            } else {
                0.0
            },
            goodput_rps: if makespan_s > 0.0 {
                completed as f64 / makespan_s
            } else {
                0.0
            },
            mean_ms: if completed == 0 {
                0.0
            } else {
                sorted.iter().sum::<f64>() / completed as f64
            },
            p50_ms: percentile(&sorted, 0.50),
            p95_ms: percentile(&sorted, 0.95),
            p99_ms: percentile(&sorted, 0.99),
            max_ms: sorted.last().copied().unwrap_or(0.0),
            slo_violations: self.slo_violations,
            slo_violation_rate: if completed == 0 {
                0.0
            } else {
                self.slo_violations as f64 / completed as f64
            },
            // The queue is provably empty after the last real event (a
            // non-empty queue would schedule more work), so the integral
            // over the whole horizon divided by the makespan is exact even
            // when stale timers popped past it.
            mean_queue_depth: if makespan_s > 0.0 {
                self.depth_integral / makespan_s
            } else {
                0.0
            },
            max_queue_depth: self.max_queue_depth,
            queue_depth_hist: self.depth_hist,
            batches: self.batches,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.batched_requests as f64 / self.batches as f64
            },
            slice_utilization: slice_busy
                .iter()
                .map(|b| {
                    if makespan_s > 0.0 {
                        b.as_secs_f64() / makespan_s
                    } else {
                        0.0
                    }
                })
                .collect(),
            per_class_completed: self.per_class_completed,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element such that at least `q` of the sample is `<=` it, i.e. element
/// `ceil(q * n)` (1-indexed), clamped into `[1, n]`.
///
/// Edge behavior is **defined**, not incidental:
///
/// - `q <= 0.0` returns the sample **minimum** (rank 0 clamps to 1 — the
///   nearest-rank convention's degenerate "0th percentile");
/// - `q >= 1.0` returns the sample **maximum**;
/// - a single-sample input returns that sample for every `q` (every rank
///   clamps to 1);
/// - an empty sample returns `0.0` (no latency to report);
/// - the sample must be NaN-free: NaNs are rejected upstream by
///   [`MetricsCollector::on_completion`] before `sort_by(total_cmp)` ever
///   sees them (`total_cmp` would sort NaNs to the top and corrupt the
///   high percentiles), and this function debug-asserts the invariant.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(
        sorted.iter().all(|l| !l.is_nan()),
        "percentile input contains NaN"
    );
    debug_assert!(!q.is_nan(), "percentile quantile is NaN");
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn percentile_edges_are_defined() {
        // q = 0 is the minimum by definition, not an accident of clamping;
        // q past the ends clamps; a single sample answers every q.
        let v = [3.0, 9.0, 27.0];
        assert_eq!(percentile(&v, 0.0), 3.0, "0th percentile = minimum");
        assert_eq!(percentile(&v, -0.5), 3.0, "q below 0 clamps");
        assert_eq!(percentile(&v, 1.5), 27.0, "q above 1 clamps");
        assert_eq!(percentile(&v, 1.0 / 3.0), 3.0, "exact rank boundary");
        assert_eq!(percentile(&v, 0.34), 9.0, "just past the boundary");
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[42.0], q), 42.0, "single sample at q={q}");
        }
        assert_eq!(percentile(&[], 0.0), 0.0);
        assert_eq!(percentile(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "contains NaN")]
    fn percentile_rejects_nan_samples() {
        // NaN latencies are structurally excluded (SimTime's constructors
        // reject non-finite values, and on_completion asserts finiteness as
        // a second line of defense), but percentile itself still refuses a
        // poisoned sample instead of silently reporting NaN-adjacent ranks.
        let _ = percentile(&[1.0, f64::NAN, 3.0], 0.99);
    }

    #[test]
    fn collector_tracks_conservation_and_depth() {
        let config = ServeConfig::default_two_slice();
        let trace = TraceConfig::poisson(100.0, 10, 1);
        let mut m = MetricsCollector::new(&config, &trace);
        for id in 0..10u64 {
            m.on_arrival(&Request {
                id,
                arrival: SimTime::from_millis(id as f64),
                class: 0,
                act: 0.5,
            });
        }
        m.observe_queue_depth(4, SimTime::from_millis(10.0));
        m.observe_queue_depth(2, SimTime::from_millis(10.0));
        m.on_dispatch(6);
        for _ in 0..6 {
            m.on_completion(Completion {
                class: 0,
                latency: SimTime::from_millis(20.0),
            });
        }
        m.on_drop(&Request {
            id: 99,
            arrival: SimTime::from_millis(1.0),
            class: 0,
            act: 0.5,
        });
        let s = m.finish(SimTime::from_millis(50.0), 3, &[SimTime::from_millis(25.0)]);
        assert_eq!(s.admitted, 10);
        assert_eq!(s.completed, 6);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.pending, 3);
        assert!(s.conservation_holds());
        // A lost request is caught: measured pending disagrees with the
        // counter books.
        let broken = ServingSummary {
            pending: 2,
            ..s.clone()
        };
        assert!(!broken.conservation_holds());
        // Depth integral (4*10ms + 2*10ms = 60 depth-ms) over the 50 ms
        // makespan.
        assert!((s.mean_queue_depth - 1.2).abs() < 1e-12);
        assert_eq!(s.max_queue_depth, 4);
        assert!((s.mean_batch - 6.0).abs() < 1e-12);
        assert!((s.slice_utilization[0] - 0.5).abs() < 1e-12);
        assert!(s.goodput_bounded());
    }

    #[test]
    fn queue_depth_histogram_reconciles_with_the_integral_mean() {
        // Satellite regression: the time-weighted histogram must reproduce
        // the pre-existing scalar integral exactly — weighted samples, not
        // point samples, and the identical fold order.
        let config = ServeConfig::default_two_slice();
        let trace = TraceConfig::poisson(100.0, 10, 1);
        let mut m = MetricsCollector::new(&config, &trace);
        let samples = [
            (4usize, SimTime::from_millis(370.0)),
            (0, SimTime::from_secs(1.1)),
            (2, SimTime::from_millis(10.0)),
            (7, SimTime::from_millis(3.0)),
            (4, SimTime::from_secs(2.0)),
        ];
        let mut integral = 0.0f64;
        for (depth, span) in samples {
            m.observe_queue_depth(depth, span);
            integral += depth as f64 * span.as_secs_f64();
        }
        let makespan = SimTime::from_secs(5.0);
        let s = m.finish(makespan, 0, &[]);
        let h = &s.queue_depth_hist;
        // Bit-exact, not approximate: same products, same addition order.
        assert_eq!(h.weighted_sum(), integral);
        assert_eq!(h.weighted_mean(s.makespan_s), s.mean_queue_depth);
        assert_eq!(h.observations(), samples.len() as u64);
        assert_eq!(
            h.total_weight(),
            samples.iter().map(|(_, w)| w.as_secs_f64()).sum::<f64>()
        );
        assert_eq!(h.max_value(), 7.0);
        assert_eq!(s.max_queue_depth, 7);
        // The zero-depth span carries weight but no depth: it dilutes the
        // mean (a point-sample histogram would miss this entirely).
        assert!(s.mean_queue_depth < 4.0 / 5.0 * 4.0);
    }

    #[test]
    fn slo_violations_scale_per_class() {
        let mut config = ServeConfig::default_two_slice();
        config.slo = SimTime::from_millis(10.0);
        let trace = TraceConfig::poisson(100.0, 4, 1);
        let mut m = MetricsCollector::new(&config, &trace);
        // Class 0 (scale 1.0): 15 ms violates. Class 1 (scale 4.0): 15 ms
        // is fine, 50 ms violates.
        for (class, ms) in [(0u8, 15.0), (0, 5.0), (1, 15.0), (1, 50.0)] {
            m.on_completion(Completion {
                class,
                latency: SimTime::from_millis(ms),
            });
        }
        let s = m.finish(SimTime::from_millis(100.0), 0, &[]);
        assert_eq!(s.slo_violations, 2);
        assert!((s.slo_violation_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.per_class_completed, vec![2, 2]);
    }
}
