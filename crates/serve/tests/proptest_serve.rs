//! Property tests for the serving simulator's queue and scheduler:
//! request conservation, FIFO order within a priority class, and
//! byte-identical traces across execution engines and repeated runs.

use nc_dnn::inception::inception_v3;
use nc_dnn::Model;
use nc_geometry::SimTime;
use nc_serve::{
    simulate, simulate_traced, simulate_with_cost, BatchPolicy, ServeConfig, ServingOutcome,
    TraceConfig, TraceEvent,
};
use nc_telemetry::{Level, Telemetry};
use neural_cache::{BatchCostModel, SystemConfig};
use proptest::prelude::*;

/// Decodes a policy from two random draws.
fn policy_from(kind: usize, size: usize) -> BatchPolicy {
    let size = size.max(1);
    match kind % 3 {
        0 => BatchPolicy::Fixed { size },
        1 => BatchPolicy::MaxWait {
            max_batch: size,
            max_wait: SimTime::from_millis(5.0 + size as f64),
        },
        _ => BatchPolicy::SloAdaptive { max_batch: size },
    }
}

/// Decodes a trace from random draws (open-loop kinds only when
/// `open_only`; closed-loop arrival order is think-time dependent, so the
/// FIFO property keys on open-loop traces).
fn trace_from(
    kind: usize,
    rate: usize,
    requests: usize,
    seed: u64,
    open_only: bool,
) -> TraceConfig {
    let requests = requests.clamp(10, 160);
    let rate = rate.clamp(50, 3000) as f64;
    match if open_only { kind % 2 } else { kind % 3 } {
        0 => TraceConfig::poisson(rate, requests, seed),
        1 => TraceConfig::bursty(rate * 0.2, rate * 2.0, 0.03, requests, seed),
        _ => TraceConfig::closed_loop(1 + requests / 16, 0.004, requests, seed),
    }
}

#[allow(clippy::too_many_arguments)] // flat proptest inputs, decoded here
fn run(
    policy_kind: usize,
    size: usize,
    trace_kind: usize,
    rate: usize,
    requests: usize,
    seed: u64,
    slices: usize,
    queue_capacity: usize,
    open_only: bool,
) -> (ServingOutcome, TraceConfig) {
    let config = ServeConfig {
        system: SystemConfig::xeon_e5_2697_v3(),
        slices: slices.clamp(1, 4),
        policy: policy_from(policy_kind, size),
        queue_capacity: queue_capacity.clamp(4, 512),
        slo: SimTime::from_millis(80.0),
    };
    let trace = trace_from(trace_kind, rate, requests, seed, open_only);
    (simulate(&config, &model(), &trace), trace)
}

fn model() -> Model {
    inception_v3()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_holds_for_any_queue_shape(
        policy_kind in 0usize..3,
        size in 1usize..32,
        trace_kind in 0usize..3,
        rate in 50usize..3000,
        requests in 10usize..160,
        seed in 0u64..10_000,
        slices in 1usize..4,
        queue_capacity in 4usize..64,
    ) {
        let (out, _) = run(
            policy_kind, size, trace_kind, rate, requests, seed, slices,
            queue_capacity, false,
        );
        let s = &out.summary;
        prop_assert!(s.conservation_holds(),
            "admitted {} != completed {} + dropped {} + pending {}",
            s.admitted, s.completed, s.dropped, s.pending);
        // Drained runs leave nothing behind.
        prop_assert_eq!(s.pending, 0);
        prop_assert_eq!(s.admitted, requests.clamp(10, 160));
        prop_assert!(s.goodput_bounded(),
            "goodput {} exceeds offered {}", s.goodput_rps, s.offered_load_rps);
        prop_assert!(s.max_queue_depth <= queue_capacity.clamp(4, 512));
        // The trace agrees with the counters.
        let drops = out.trace.events.iter()
            .filter(|e| matches!(e, TraceEvent::Drop { .. })).count();
        prop_assert_eq!(drops, s.dropped);
    }

    #[test]
    fn completions_are_fifo_within_a_priority_class_on_one_slice(
        policy_kind in 0usize..3,
        size in 1usize..24,
        trace_kind in 0usize..2,
        rate in 100usize..2500,
        requests in 10usize..120,
        seed in 0u64..10_000,
    ) {
        // Open-loop traces (arrival order == id order), one slice: within
        // each priority class completions must preserve arrival order.
        let (out, _) = run(
            policy_kind, size, trace_kind, rate, requests, seed, 1, 512, true,
        );
        let mut arrived: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        let mut last_completed: Vec<Option<u64>> = vec![None; 8];
        for e in &out.trace.events {
            match e {
                TraceEvent::Arrive { id, class, .. } => {
                    arrived.insert(*id, *class);
                }
                TraceEvent::Complete { ids, .. } => {
                    for id in ids {
                        let class = arrived[id] as usize;
                        if let Some(prev) = last_completed[class] {
                            prop_assert!(prev < *id,
                                "class {class}: {prev} completed before {id} out of order");
                        }
                        last_completed[class] = Some(*id);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn dispatch_is_fifo_within_a_priority_class_on_any_slices(
        policy_kind in 0usize..3,
        size in 1usize..24,
        trace_kind in 0usize..2,
        rate in 100usize..2500,
        requests in 10usize..120,
        seed in 0u64..10_000,
        slices in 1usize..4,
    ) {
        let (out, trace) = run(
            policy_kind, size, trace_kind, rate, requests, seed, slices, 512, true,
        );
        // Multi-slice completions may reorder across slices, but batches
        // must leave the queue FIFO within each class.
        let mut arrived: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        let mut last_dispatched: Vec<Option<u64>> = vec![None; trace.mix.len()];
        for e in &out.trace.events {
            match e {
                TraceEvent::Arrive { id, class, .. } => {
                    arrived.insert(*id, *class);
                }
                TraceEvent::Dispatch { ids, .. } => {
                    for id in ids {
                        let class = arrived[id] as usize;
                        if let Some(prev) = last_dispatched[class] {
                            prop_assert!(prev < *id,
                                "class {class}: {prev} dispatched before {id} out of order");
                        }
                        last_dispatched[class] = Some(*id);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn identical_seeds_are_byte_identical_across_engines(
        policy_kind in 0usize..3,
        size in 1usize..24,
        trace_kind in 0usize..3,
        rate in 100usize..2000,
        requests in 10usize..100,
        seed in 0u64..10_000,
        threads in 2usize..6,
    ) {
        let trace = trace_from(trace_kind, rate, requests, seed, false);
        let mk = |system: SystemConfig| ServeConfig {
            system,
            slices: 2,
            policy: policy_from(policy_kind, size),
            queue_capacity: 128,
            slo: SimTime::from_millis(80.0),
        };
        let seq = simulate(&mk(SystemConfig::xeon_e5_2697_v3()), &model(), &trace);
        let thr = simulate(&mk(SystemConfig::with_parallelism(threads)), &model(), &trace);
        prop_assert_eq!(
            seq.trace.to_log().into_bytes(),
            thr.trace.to_log().into_bytes(),
            "engines must not perturb the serving trajectory"
        );
        prop_assert_eq!(seq.summary, thr.summary);
        // And re-running the same engine reproduces itself.
        let again = simulate(&mk(SystemConfig::xeon_e5_2697_v3()), &model(), &trace);
        prop_assert_eq!(seq.trace.to_log(), again.trace.to_log());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A traced simulation is trajectory-identical to the untraced one
    /// and mirrors every deterministic log event as exactly one telemetry
    /// record, with the lifecycle counters matching the summary's books.
    #[test]
    fn traced_simulation_mirrors_every_event(
        policy_kind in 0usize..3,
        size in 1usize..32,
        trace_kind in 0usize..3,
        rate in 50usize..3000,
        requests in 10usize..120,
        seed in 0u64..10_000,
        slices in 1usize..4,
        queue_capacity in 4usize..64,
    ) {
        let config = ServeConfig {
            system: SystemConfig::xeon_e5_2697_v3(),
            slices: slices.clamp(1, 4),
            policy: policy_from(policy_kind, size),
            queue_capacity: queue_capacity.clamp(4, 512),
            slo: SimTime::from_millis(80.0),
        };
        let cost = BatchCostModel::new(&config.system, &model());
        let trace = trace_from(trace_kind, rate, requests, seed, false);

        let plain = simulate_with_cost(&config, &cost, &trace);
        let tel = Telemetry::enabled(Level::Detail);
        let traced = simulate_traced(&config, &cost, &trace, &tel);

        // Pure observation: the trajectory is byte-identical.
        prop_assert_eq!(plain.trace.to_log(), traced.trace.to_log());
        prop_assert_eq!(&plain.summary, &traced.summary);

        // Exactly one telemetry record per deterministic log event.
        prop_assert_eq!(tel.record_count("serving.event"), traced.trace.events.len());
        // Detail level also spans the queue wait of every dispatched
        // request; a drained run dispatches exactly the completed set.
        prop_assert_eq!(tel.span_count("serving.request"), traced.summary.completed);
        // Lifecycle counters match the summary's books.
        let s = &traced.summary;
        prop_assert_eq!(tel.counter("serving.arrivals"), s.admitted as u64);
        prop_assert_eq!(tel.counter("serving.drops"), s.dropped as u64);
        prop_assert_eq!(tel.counter("serving.completions"), s.completed as u64);
        prop_assert_eq!(tel.counter("serving.dispatches"), s.batches as u64);
    }
}
