//! Quantized DNN substrate for the Neural Cache (ISCA 2018) reproduction.
//!
//! Neural Cache executes 8-bit quantized CNN inference. This crate provides
//! everything the accelerator model needs from the "ML framework" side,
//! built from scratch:
//!
//! - [`Shape`]/[`QTensor`]: NHWC activation tensors quantized to `u8` with
//!   affine (scale, zero-point) parameters;
//! - [`quant`]: the exact integer arithmetic specification shared by the
//!   reference executor and the in-cache functional executor — zero-point
//!   corrected accumulation, dynamic per-layer min/max ranging, and the
//!   multiplier/shift requantization pipeline of Section IV-D;
//! - [`layer`]: convolution / pooling / fully-connected / Inception mixed
//!   blocks, assembled into a [`Model`];
//! - [`reference`](mod@crate::reference): a plain-Rust integer executor (the golden
//!   model — our substitute for instrumented TensorFlow traces, DESIGN.md §4);
//! - [`inception`]: the complete Inception v3 graph (20 top-level layers,
//!   94 convolution sub-layers) with seeded synthetic weights;
//! - [`summary`]: Table I derivation (layer parameters, convolution counts,
//!   filter/input megabytes).
//!
//! # Example
//!
//! ```
//! use nc_dnn::inception::inception_v3;
//! use nc_dnn::summary::table1;
//!
//! let model = inception_v3();
//! let rows = table1(&model);
//! assert_eq!(rows.len(), 20);
//! assert_eq!(rows[0].convolutions, 710_432); // Conv2D 1a, as printed in Table I
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: quantized arithmetic converts between integer widths
// and f64 by design (the casts *are* the quantization spec); the workload
// builders are long but linear; bytecount would add a dependency for a
// cold path.
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::naive_bytecount,
    clippy::too_many_lines
)]

pub mod inception;
pub mod layer;
pub mod quant;
pub mod reference;
mod shape;
pub mod summary;
mod tensor;
pub mod workload;

pub use layer::{Branch, BranchOp, Conv2d, ConvSpec, Layer, MixedBlock, Model, Pool2d, PoolKind};
pub use quant::{ActQuant, Requantizer, WeightQuant};
pub use shape::{conv_out_dim, pad_before, pad_total, Padding, Shape};
pub use tensor::{AccTensor, QTensor};
