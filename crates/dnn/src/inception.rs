//! The complete Inception v3 graph (Szegedy et al., CVPR 2016), the
//! paper's benchmark model: 20 top-level layers, 94 convolution sub-layers.
//!
//! The structure below reproduces the TF-slim `inception_v3` network the
//! paper profiles; its Table I row values (H, `RxS`, E, C, M, convolution
//! counts, filter megabytes) are derived from this graph and asserted
//! against the paper in `summary` tests. Weights are synthetic (seeded
//! pseudo-random codes) — the schedule and cycle counts of Neural Cache are
//! data-independent (Section VI-A), so real `ImageNet` weights would change
//! no timing result; see DESIGN.md §4.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::{
    ActQuant, Branch, BranchOp, Conv2d, ConvSpec, Layer, MixedBlock, Model, Padding, Pool2d,
    PoolKind, Shape, WeightQuant,
};

/// Builds the Inception v3 graph without weights (shape-only): sufficient
/// for Table I, the data-layout planner, and the timing simulator.
#[must_use]
pub fn inception_v3() -> Model {
    build(None)
}

/// Builds Inception v3 with seeded synthetic weights and biases, for
/// functional (bit-accurate) execution.
#[must_use]
pub fn inception_v3_with_weights(seed: u64) -> Model {
    build(Some(SmallRng::seed_from_u64(seed)))
}

/// Number of convolution sub-layers the paper quotes for Inception v3
/// ("94 convolutional sub-layers", Section II-A) — the graph has 95
/// convolution nodes including the final classifier, which the paper counts
/// separately because `TensorFlow` labels it `FullyConnected` even though it
/// executes as a 1x1 convolution.
pub const CONV_SUBLAYERS: usize = 94;

struct B {
    rng: Option<SmallRng>,
}

impl B {
    #[allow(clippy::too_many_arguments)] // mirrors the paper's (R,S,C,M,U,pad) nomenclature
    fn conv(
        &mut self,
        name: &str,
        (r, s): (usize, usize),
        c: usize,
        m: usize,
        stride: usize,
        padding: Padding,
        relu: bool,
    ) -> Conv2d {
        let spec = ConvSpec {
            name: name.to_owned(),
            r,
            s,
            c,
            m,
            stride,
            padding,
            relu,
        };
        match &mut self.rng {
            None => Conv2d::shape_only(spec),
            Some(rng) => {
                let mut weights = vec![0u8; spec.weight_len()];
                rng.fill_bytes(&mut weights);
                let w_quant = WeightQuant {
                    scale: 0.004 + rng.gen::<f64>() * 0.004,
                    zero_point: 120 + rng.gen_range(0..16),
                };
                let bias: Vec<i64> = (0..m).map(|_| rng.gen_range(-800..800)).collect();
                Conv2d::with_weights(spec, weights, w_quant, bias)
            }
        }
    }
}

fn avg_pool(name: &str) -> BranchOp {
    BranchOp::Pool(Pool2d {
        name: name.to_owned(),
        kind: PoolKind::Avg,
        k: 3,
        stride: 1,
        padding: Padding::Same,
    })
}

fn max_pool_s2(name: &str) -> BranchOp {
    BranchOp::Pool(Pool2d {
        name: name.to_owned(),
        kind: PoolKind::Max,
        k: 3,
        stride: 2,
        padding: Padding::Valid,
    })
}

/// Inception-A block (Mixed 5b/5c/5d): 1x1 + (1x1 -> 5x5) + (1x1 -> 3x3 ->
/// 3x3) + (avgpool -> 1x1 proj).
fn inception_a(b: &mut B, name: &str, in_c: usize, proj: usize) -> Layer {
    let n = |suffix: &str| format!("{name}/{suffix}");
    Layer::Mixed(MixedBlock {
        name: name.to_owned(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(b_conv(
                b,
                &n("b0_1x1"),
                (1, 1),
                in_c,
                64,
            ))]),
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b1_1x1"), (1, 1), in_c, 48)),
                BranchOp::Conv(b_conv(b, &n("b1_5x5"), (5, 5), 48, 64)),
            ]),
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b2_1x1"), (1, 1), in_c, 64)),
                BranchOp::Conv(b_conv(b, &n("b2_3x3_a"), (3, 3), 64, 96)),
                BranchOp::Conv(b_conv(b, &n("b2_3x3_b"), (3, 3), 96, 96)),
            ]),
            Branch::new(vec![
                avg_pool(&n("b3_pool")),
                BranchOp::Conv(b_conv(b, &n("b3_proj"), (1, 1), in_c, proj)),
            ]),
        ],
    })
}

/// Reduction-A block (Mixed 6a): stride-2 3x3 + (1x1 -> 3x3 -> 3x3/2) +
/// maxpool.
fn reduction_a(b: &mut B, name: &str, in_c: usize) -> Layer {
    let n = |suffix: &str| format!("{name}/{suffix}");
    Layer::Mixed(MixedBlock {
        name: name.to_owned(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(b.conv(
                &n("b0_3x3"),
                (3, 3),
                in_c,
                384,
                2,
                Padding::Valid,
                true,
            ))]),
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b1_1x1"), (1, 1), in_c, 64)),
                BranchOp::Conv(b_conv(b, &n("b1_3x3_a"), (3, 3), 64, 96)),
                BranchOp::Conv(b.conv(&n("b1_3x3_b"), (3, 3), 96, 96, 2, Padding::Valid, true)),
            ]),
            Branch::new(vec![max_pool_s2(&n("b2_pool"))]),
        ],
    })
}

/// Inception-B block (Mixed 6b..6e): 1x1 + (1x1 -> 1x7 -> 7x1) +
/// (1x1 -> 7x1 -> 1x7 -> 7x1 -> 1x7) + (avgpool -> 1x1), with `mid` the
/// 7x7-factorized width (128/160/192).
fn inception_b(b: &mut B, name: &str, in_c: usize, mid: usize) -> Layer {
    let n = |suffix: &str| format!("{name}/{suffix}");
    Layer::Mixed(MixedBlock {
        name: name.to_owned(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(b_conv(
                b,
                &n("b0_1x1"),
                (1, 1),
                in_c,
                192,
            ))]),
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b1_1x1"), (1, 1), in_c, mid)),
                BranchOp::Conv(b_conv(b, &n("b1_1x7"), (1, 7), mid, mid)),
                BranchOp::Conv(b_conv(b, &n("b1_7x1"), (7, 1), mid, 192)),
            ]),
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b2_1x1"), (1, 1), in_c, mid)),
                BranchOp::Conv(b_conv(b, &n("b2_7x1_a"), (7, 1), mid, mid)),
                BranchOp::Conv(b_conv(b, &n("b2_1x7_a"), (1, 7), mid, mid)),
                BranchOp::Conv(b_conv(b, &n("b2_7x1_b"), (7, 1), mid, mid)),
                BranchOp::Conv(b_conv(b, &n("b2_1x7_b"), (1, 7), mid, 192)),
            ]),
            Branch::new(vec![
                avg_pool(&n("b3_pool")),
                BranchOp::Conv(b_conv(b, &n("b3_proj"), (1, 1), in_c, 192)),
            ]),
        ],
    })
}

/// Reduction-B block (Mixed 7a): (1x1 -> 3x3/2) + (1x1 -> 1x7 -> 7x1 ->
/// 3x3/2) + maxpool.
fn reduction_b(b: &mut B, name: &str, in_c: usize) -> Layer {
    let n = |suffix: &str| format!("{name}/{suffix}");
    Layer::Mixed(MixedBlock {
        name: name.to_owned(),
        branches: vec![
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b0_1x1"), (1, 1), in_c, 192)),
                BranchOp::Conv(b.conv(&n("b0_3x3"), (3, 3), 192, 320, 2, Padding::Valid, true)),
            ]),
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b1_1x1"), (1, 1), in_c, 192)),
                BranchOp::Conv(b_conv(b, &n("b1_1x7"), (1, 7), 192, 192)),
                BranchOp::Conv(b_conv(b, &n("b1_7x1"), (7, 1), 192, 192)),
                BranchOp::Conv(b.conv(&n("b1_3x3"), (3, 3), 192, 192, 2, Padding::Valid, true)),
            ]),
            Branch::new(vec![max_pool_s2(&n("b2_pool"))]),
        ],
    })
}

/// Inception-C block (Mixed 7b/7c): 1x1 + (1x1 -> {1x3, 3x1}) +
/// (1x1 -> 3x3 -> {1x3, 3x1}) + (avgpool -> 1x1).
fn inception_c(b: &mut B, name: &str, in_c: usize) -> Layer {
    let n = |suffix: &str| format!("{name}/{suffix}");
    Layer::Mixed(MixedBlock {
        name: name.to_owned(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(b_conv(
                b,
                &n("b0_1x1"),
                (1, 1),
                in_c,
                320,
            ))]),
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b1_1x1"), (1, 1), in_c, 384)),
                BranchOp::Split(vec![
                    b_conv(b, &n("b1_1x3"), (1, 3), 384, 384),
                    b_conv(b, &n("b1_3x1"), (3, 1), 384, 384),
                ]),
            ]),
            Branch::new(vec![
                BranchOp::Conv(b_conv(b, &n("b2_1x1"), (1, 1), in_c, 448)),
                BranchOp::Conv(b_conv(b, &n("b2_3x3"), (3, 3), 448, 384)),
                BranchOp::Split(vec![
                    b_conv(b, &n("b2_1x3"), (1, 3), 384, 384),
                    b_conv(b, &n("b2_3x1"), (3, 1), 384, 384),
                ]),
            ]),
            Branch::new(vec![
                avg_pool(&n("b3_pool")),
                BranchOp::Conv(b_conv(b, &n("b3_proj"), (1, 1), in_c, 192)),
            ]),
        ],
    })
}

/// Stride-1 SAME convolution with `ReLU` — the common case inside blocks.
fn b_conv(b: &mut B, name: &str, k: (usize, usize), c: usize, m: usize) -> Conv2d {
    b.conv(name, k, c, m, 1, Padding::Same, true)
}

fn build(rng: Option<SmallRng>) -> Model {
    let mut b = B { rng };
    let layers = vec![
        // --- Stem ---
        Layer::Conv(b.conv("Conv2d_1a_3x3", (3, 3), 3, 32, 2, Padding::Valid, true)),
        Layer::Conv(b.conv("Conv2d_2a_3x3", (3, 3), 32, 32, 1, Padding::Valid, true)),
        Layer::Conv(b.conv("Conv2d_2b_3x3", (3, 3), 32, 64, 1, Padding::Same, true)),
        Layer::Pool(Pool2d {
            name: "MaxPool_3a_3x3".into(),
            kind: PoolKind::Max,
            k: 3,
            stride: 2,
            padding: Padding::Valid,
        }),
        Layer::Conv(b.conv("Conv2d_3b_1x1", (1, 1), 64, 80, 1, Padding::Valid, true)),
        Layer::Conv(b.conv("Conv2d_4a_3x3", (3, 3), 80, 192, 1, Padding::Valid, true)),
        Layer::Pool(Pool2d {
            name: "MaxPool_5a_3x3".into(),
            kind: PoolKind::Max,
            k: 3,
            stride: 2,
            padding: Padding::Valid,
        }),
        // --- Inception-A ---
        inception_a(&mut b, "Mixed_5b", 192, 32),
        inception_a(&mut b, "Mixed_5c", 256, 64),
        inception_a(&mut b, "Mixed_5d", 288, 64),
        // --- Reduction-A ---
        reduction_a(&mut b, "Mixed_6a", 288),
        // --- Inception-B ---
        inception_b(&mut b, "Mixed_6b", 768, 128),
        inception_b(&mut b, "Mixed_6c", 768, 160),
        inception_b(&mut b, "Mixed_6d", 768, 160),
        inception_b(&mut b, "Mixed_6e", 768, 192),
        // --- Reduction-B ---
        reduction_b(&mut b, "Mixed_7a", 768),
        // --- Inception-C ---
        inception_c(&mut b, "Mixed_7b", 1280),
        inception_c(&mut b, "Mixed_7c", 2048),
        // --- Head ---
        Layer::Pool(Pool2d {
            name: "AvgPool".into(),
            kind: PoolKind::Avg,
            k: 8,
            stride: 1,
            padding: Padding::Valid,
        }),
        Layer::Conv(b.conv(
            "FullyConnected",
            (1, 1),
            2048,
            1001,
            1,
            Padding::Valid,
            false,
        )),
    ];
    let model = Model {
        name: "Inception v3".into(),
        input_shape: Shape::new(299, 299, 3),
        input_quant: ActQuant::from_range(-1.0, 1.0),
        layers,
    };
    debug_assert_eq!(model.validate(), Shape::new(1, 1, 1001));
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_chain_reaches_logits() {
        let m = inception_v3();
        assert_eq!(m.output_shape(), Shape::new(1, 1, 1001));
        assert_eq!(m.layers.len(), 20, "Table I has 20 rows");
    }

    #[test]
    fn conv_sublayer_count_matches_paper() {
        let m = inception_v3();
        // 94 convolutional sub-layers + the FullyConnected classifier that
        // TensorFlow converts to a 1x1 convolution.
        assert_eq!(m.conv_sublayer_count(), CONV_SUBLAYERS + 1);
    }

    #[test]
    fn intermediate_shapes_match_table1() {
        let m = inception_v3();
        let inputs = m.layer_inputs();
        let h: Vec<usize> = inputs.iter().map(|s| s.h).collect();
        assert_eq!(
            h,
            vec![
                299, 149, 147, 147, 73, 73, 71, // stem
                35, 35, 35, // 5b-5d
                35, // 6a
                17, 17, 17, 17, // 6b-6e
                17, // 7a
                8, 8, // 7b, 7c
                8, 1 // avgpool, fc
            ]
        );
        // Block output channels.
        assert_eq!(inputs[8].c, 256, "Mixed_5b output");
        assert_eq!(inputs[9].c, 288, "Mixed_5c output");
        assert_eq!(inputs[10].c, 288, "Mixed_5d output");
        assert_eq!(inputs[11].c, 768, "Mixed_6a output");
        assert_eq!(inputs[16].c, 1280, "Mixed_7a output");
        assert_eq!(inputs[17].c, 2048, "Mixed_7b output");
    }

    #[test]
    fn total_filter_bytes_near_paper_total() {
        let m = inception_v3();
        let mb = m.total_filter_bytes() as f64 / (1024.0 * 1024.0);
        // Table I's filter column sums to 21.7 MB; our graph derives
        // 22.7 MB because the paper's Mixed_6a and Mixed_6e filter cells
        // are inconsistent with their own convolution counts (DESIGN.md §6).
        assert!((22.0..23.5).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn weighted_model_has_weights_and_is_deterministic() {
        let a = inception_v3_with_weights(7);
        let b = inception_v3_with_weights(7);
        let c = inception_v3_with_weights(8);
        assert!(a.has_weights());
        assert_eq!(a, b, "same seed, same model");
        assert_ne!(a, c, "different seed, different weights");
    }
}
