//! Table I derivation: per-layer parameters of the benchmark network.
//!
//! The paper's Table I lists, for each of Inception v3's 20 top-level
//! layers: input height `H`, filter window range `RxS`, output height `E`,
//! channel range `C`, filter-batch range `M`, the number of convolutions,
//! and filter/input sizes in MB. All columns here are *derived* from the
//! model graph; tests assert them against the published table.
//!
//! Two conventions reverse-engineered from the published numbers:
//! - pooling steps inside mixed blocks contribute their channel count to
//!   both the `C` and `M` ranges (standalone pooling layers print `C = 0`);
//! - the input size of a mixed block counts the block input once per
//!   branch (each branch independently streams the block input).

use std::fmt::Write;

use crate::{Branch, BranchOp, Layer, Model, Shape};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSummary {
    /// Layer name.
    pub name: String,
    /// Input spatial height `H`.
    pub h: usize,
    /// Smallest filter window `R*S` among sub-layers (pool window for
    /// standalone pooling layers).
    pub window_min: usize,
    /// Largest filter window `R*S`.
    pub window_max: usize,
    /// Output spatial height `E`.
    pub e: usize,
    /// Smallest channel count `C` (0 for standalone pooling layers).
    pub c_min: usize,
    /// Largest channel count `C`.
    pub c_max: usize,
    /// Smallest filter-batch count `M`.
    pub m_min: usize,
    /// Largest filter-batch count `M`.
    pub m_max: usize,
    /// Total convolutions: sum over conv sub-layers of `E_h * E_w * M`.
    pub convolutions: usize,
    /// Filter bytes of the layer, in MB (8-bit codes, MB = 2^20 bytes).
    pub filter_mb: f64,
    /// Input bytes of the layer, in MB (mixed blocks: once per branch).
    pub input_mb: f64,
}

const MB: f64 = 1024.0 * 1024.0;

/// Computes the Table I rows of a model.
#[must_use]
pub fn table1(model: &Model) -> Vec<LayerSummary> {
    model
        .layers
        .iter()
        .zip(model.layer_inputs())
        .map(|(layer, input)| summarize_layer(layer, input))
        .collect()
}

fn summarize_layer(layer: &Layer, input: Shape) -> LayerSummary {
    let out = layer.out_shape(input);
    match layer {
        Layer::Conv(conv) => {
            let spec = &conv.spec;
            let conv_out = spec.out_shape(input);
            LayerSummary {
                name: spec.name.clone(),
                h: input.h,
                window_min: spec.window(),
                window_max: spec.window(),
                e: out.h,
                c_min: spec.c,
                c_max: spec.c,
                m_min: spec.m,
                m_max: spec.m,
                convolutions: conv_out.h * conv_out.w * spec.m,
                filter_mb: spec.weight_len() as f64 / MB,
                input_mb: input.bytes() as f64 / MB,
            }
        }
        Layer::Pool(pool) => LayerSummary {
            name: pool.name.clone(),
            h: input.h,
            window_min: pool.k * pool.k,
            window_max: pool.k * pool.k,
            e: out.h,
            c_min: 0,
            c_max: 0,
            m_min: input.c,
            m_max: input.c,
            convolutions: 0,
            filter_mb: 0.0,
            input_mb: input.bytes() as f64 / MB,
        },
        Layer::Mixed(block) => {
            let mut window = RangeAcc::new();
            let mut c = RangeAcc::new();
            let mut m = RangeAcc::new();
            let mut convolutions = 0usize;
            let mut filter_bytes = 0usize;
            for branch in &block.branches {
                walk_branch(
                    branch,
                    input,
                    &mut window,
                    &mut c,
                    &mut m,
                    &mut convolutions,
                    &mut filter_bytes,
                );
            }
            LayerSummary {
                name: block.name.clone(),
                h: input.h,
                window_min: window.min,
                window_max: window.max,
                e: out.h,
                c_min: c.min,
                c_max: c.max,
                m_min: m.min,
                m_max: m.max,
                convolutions,
                filter_mb: filter_bytes as f64 / MB,
                // Each branch streams the block input (paper convention).
                input_mb: (block.branches.len() * input.bytes()) as f64 / MB,
            }
        }
    }
}

fn walk_branch(
    branch: &Branch,
    block_input: Shape,
    window: &mut RangeAcc,
    c: &mut RangeAcc,
    m: &mut RangeAcc,
    convolutions: &mut usize,
    filter_bytes: &mut usize,
) {
    let mut cur = block_input;
    for op in &branch.ops {
        match op {
            BranchOp::Conv(conv) => {
                let spec = &conv.spec;
                let out = spec.out_shape(cur);
                window.add(spec.window());
                c.add(spec.c);
                m.add(spec.m);
                *convolutions += out.h * out.w * spec.m;
                *filter_bytes += spec.weight_len();
                cur = out;
            }
            BranchOp::Pool(pool) => {
                // Pool steps contribute their channel count to the C and M
                // ranges (Table I convention for mixed blocks).
                c.add(cur.c);
                m.add(cur.c);
                cur = pool.out_shape(cur);
            }
            BranchOp::Split(convs) => {
                let mut total_c = 0;
                for conv in convs {
                    let spec = &conv.spec;
                    let out = spec.out_shape(cur);
                    window.add(spec.window());
                    c.add(spec.c);
                    m.add(spec.m);
                    *convolutions += out.h * out.w * spec.m;
                    *filter_bytes += spec.weight_len();
                    total_c += out.c;
                }
                cur = Shape::new(op.out_shape(cur).h, op.out_shape(cur).w, total_c);
            }
        }
    }
}

struct RangeAcc {
    min: usize,
    max: usize,
}

impl RangeAcc {
    fn new() -> Self {
        RangeAcc {
            min: usize::MAX,
            max: 0,
        }
    }

    fn add(&mut self, v: usize) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// Renders the rows as an aligned text table (the `table1_layers` bench
/// binary prints this).
#[must_use]
pub fn render_table1(rows: &[LayerSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>4} {:>7} {:>4} {:>11} {:>11} {:>9} {:>11} {:>10}",
        "Layer", "H", "RxS", "E", "C", "M", "Conv", "Filter/MB", "Input/MB"
    );
    for r in rows {
        let fmt_range = |lo: usize, hi: usize| {
            if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            }
        };
        let _ = writeln!(
            out,
            "{:<18} {:>4} {:>7} {:>4} {:>11} {:>11} {:>9} {:>11.3} {:>10.3}",
            r.name,
            r.h,
            fmt_range(r.window_min, r.window_max),
            r.e,
            fmt_range(r.c_min, r.c_max),
            fmt_range(r.m_min, r.m_max),
            r.convolutions,
            r.filter_mb,
            r.input_mb,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inception::inception_v3;

    /// One published Table I row: (name, H, E, convolutions, filter MB,
    /// input MB).
    type PaperRow = (&'static str, usize, usize, Option<usize>, Option<f64>, f64);

    /// The published Table I. `None` marks cells where the paper's number is
    /// inconsistent with its own convolution counts / the standard Inception
    /// v3 graph (`Mixed_6e` conv count and filter size; `Mixed_6a` filter size —
    /// DESIGN.md §6 and EXPERIMENTS.md).
    const PAPER: &[PaperRow] = &[
        ("Conv2d_1a_3x3", 299, 149, Some(710_432), Some(0.001), 0.256),
        ("Conv2d_2a_3x3", 149, 147, Some(691_488), Some(0.009), 0.678),
        (
            "Conv2d_2b_3x3",
            147,
            147,
            Some(1_382_976),
            Some(0.018),
            0.659,
        ),
        ("MaxPool_3a_3x3", 147, 73, Some(0), Some(0.000), 1.319),
        ("Conv2d_3b_1x1", 73, 73, Some(426_320), Some(0.005), 0.325),
        ("Conv2d_4a_3x3", 73, 71, Some(967_872), Some(0.132), 0.407),
        ("MaxPool_5a_3x3", 71, 35, Some(0), Some(0.000), 0.923),
        ("Mixed_5b", 35, 35, Some(568_400), Some(0.243), 0.897),
        ("Mixed_5c", 35, 35, Some(607_600), Some(0.264), 1.196),
        ("Mixed_5d", 35, 35, Some(607_600), Some(0.271), 1.346),
        ("Mixed_6a", 35, 17, Some(334_720), None, 1.009),
        ("Mixed_6b", 17, 17, Some(443_904), Some(1.234), 0.847),
        ("Mixed_6c", 17, 17, Some(499_392), Some(1.609), 0.847),
        ("Mixed_6d", 17, 17, Some(499_392), Some(1.609), 0.847),
        ("Mixed_6e", 17, 17, None, None, 0.847),
        ("Mixed_7a", 17, 8, Some(254_720), Some(1.617), 0.635),
        ("Mixed_7b", 8, 8, Some(208_896), Some(4.805), 0.313),
        ("Mixed_7c", 8, 8, Some(208_896), Some(5.789), 0.500),
        ("AvgPool", 8, 1, Some(0), Some(0.000), 0.125),
        ("FullyConnected", 1, 1, Some(1_001), Some(1.955), 0.002),
    ];

    #[test]
    fn inception_matches_table1() {
        let rows = table1(&inception_v3());
        assert_eq!(rows.len(), PAPER.len());
        for (row, &(name, h, e, convs, filter_mb, input_mb)) in rows.iter().zip(PAPER) {
            assert_eq!(row.name, name);
            assert_eq!(row.h, h, "{name}: H");
            assert_eq!(row.e, e, "{name}: E");
            if let Some(convs) = convs {
                assert_eq!(row.convolutions, convs, "{name}: conv count");
            }
            if let Some(filter_mb) = filter_mb {
                assert!(
                    (row.filter_mb - filter_mb).abs() < 0.002,
                    "{name}: filter MB {} vs paper {filter_mb}",
                    row.filter_mb
                );
            }
            assert!(
                (row.input_mb - input_mb).abs() < 0.002,
                "{name}: input MB {} vs paper {input_mb}",
                row.input_mb
            );
        }
    }

    #[test]
    fn mixed_6e_discrepancy_is_what_design_md_says() {
        let rows = table1(&inception_v3());
        let m6e = rows.iter().find(|r| r.name == "Mixed_6e").unwrap();
        // Standard Inception v3 Mixed_6e (192-wide) gives 554,880; the
        // paper prints 499,392 (the 6c/6d value).
        assert_eq!(m6e.convolutions, 554_880);
    }

    #[test]
    fn channel_and_window_ranges_match_table1() {
        let rows = table1(&inception_v3());
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
        // Mixed 5b: RxS 1-25, C 48-192, M 32-192.
        let r = get("Mixed_5b");
        assert_eq!((r.window_min, r.window_max), (1, 25));
        assert_eq!((r.c_min, r.c_max), (48, 192));
        assert_eq!((r.m_min, r.m_max), (32, 192));
        // Mixed 6b: C 128-768, M 128-768. (The paper prints its RxS range
        // as "1-9" although the block's largest window is the 7-tap 1x7;
        // we derive 1-7.)
        let r = get("Mixed_6b");
        assert_eq!((r.window_min, r.window_max), (1, 7));
        assert_eq!((r.c_min, r.c_max), (128, 768));
        assert_eq!((r.m_min, r.m_max), (128, 768));
        // Mixed 7c: C 384-2048, M 192-2048.
        let r = get("Mixed_7c");
        assert_eq!((r.c_min, r.c_max), (384, 2048));
        assert_eq!((r.m_min, r.m_max), (192, 2048));
        // Mixed 6a: C 64-288, M 64-384.
        let r = get("Mixed_6a");
        assert_eq!((r.c_min, r.c_max), (64, 288));
        assert_eq!((r.m_min, r.m_max), (64, 384));
        // Standalone pools print C = 0 like the paper.
        let r = get("MaxPool_3a_3x3");
        assert_eq!((r.c_min, r.c_max), (0, 0));
        assert_eq!((r.m_min, r.m_max), (64, 64));
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = table1(&inception_v3());
        let text = render_table1(&rows);
        assert_eq!(text.lines().count(), 21);
        assert!(text.contains("Mixed_7c"));
        assert!(text.contains("5.789"));
    }
}
