//! Layer and model definitions: convolution, pooling, Inception mixed
//! blocks, and the [`Model`] container the executors and the Neural Cache
//! mapper consume.

use std::fmt;

use crate::{conv_out_dim, ActQuant, Padding, Shape, WeightQuant};

/// Shape-level description of a convolution sub-layer (no weights).
///
/// Follows the paper's nomenclature: filters have height `R`, width `S`,
/// input channels `C` and output batches `M`; the stride is `U`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvSpec {
    /// Sub-layer name (e.g. `"Conv2d_2b_3x3"` or `"Mixed_5b/b2_3x3_a"`).
    pub name: String,
    /// Filter height `R`.
    pub r: usize,
    /// Filter width `S`.
    pub s: usize,
    /// Input channels `C`.
    pub c: usize,
    /// Output channels (filter batches) `M`.
    pub m: usize,
    /// Stride `U` (same both dimensions, as everywhere in Inception v3).
    pub stride: usize,
    /// Spatial padding policy.
    pub padding: Padding,
    /// Whether a `ReLU` is fused after accumulation (true for every Inception
    /// conv except the final classifier).
    pub relu: bool,
}

impl ConvSpec {
    /// Output shape for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count disagrees with `C` or the window
    /// does not fit.
    #[must_use]
    pub fn out_shape(&self, input: Shape) -> Shape {
        assert_eq!(
            input.c, self.c,
            "{}: input has {} channels, spec expects {}",
            self.name, input.c, self.c
        );
        Shape::new(
            conv_out_dim(input.h, self.r, self.stride, self.padding),
            conv_out_dim(input.w, self.s, self.stride, self.padding),
            self.m,
        )
    }

    /// Number of weights (= filter bytes at 8-bit precision).
    #[must_use]
    pub fn weight_len(&self) -> usize {
        self.m * self.r * self.s * self.c
    }

    /// Multiply-accumulates per output element (`R*S*C`).
    #[must_use]
    pub fn macs_per_output(&self) -> usize {
        self.r * self.s * self.c
    }

    /// Window footprint `R*S` in bytes per channel per bit line.
    #[must_use]
    pub fn window(&self) -> usize {
        self.r * self.s
    }
}

/// A convolution sub-layer: spec, optional weights, quantization parameters
/// and optional per-channel integer bias (folded batch normalization).
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    /// Shape-level description.
    pub spec: ConvSpec,
    /// Weights in `[m][r][s][c]` order; `None` for shape-only models used by
    /// the timing simulator.
    pub weights: Option<Vec<u8>>,
    /// Weight quantization parameters.
    pub w_quant: WeightQuant,
    /// Per-output-channel bias in accumulator units (empty = no bias). The
    /// paper folds batch normalization into per-channel scalars added
    /// in-cache (Section IV-D); we fold them here.
    pub bias: Vec<i64>,
}

impl Conv2d {
    /// Shape-only layer (no weights) for structural/timing use.
    #[must_use]
    pub fn shape_only(spec: ConvSpec) -> Self {
        Conv2d {
            spec,
            weights: None,
            w_quant: WeightQuant::default(),
            bias: Vec::new(),
        }
    }

    /// Layer with dense weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != spec.weight_len()` or a non-empty bias
    /// has the wrong length.
    #[must_use]
    pub fn with_weights(
        spec: ConvSpec,
        weights: Vec<u8>,
        w_quant: WeightQuant,
        bias: Vec<i64>,
    ) -> Self {
        assert_eq!(
            weights.len(),
            spec.weight_len(),
            "{}: weight length",
            spec.name
        );
        assert!(
            bias.is_empty() || bias.len() == spec.m,
            "{}: bias length must be M",
            spec.name
        );
        Conv2d {
            spec,
            weights: Some(weights),
            w_quant,
            bias,
        }
    }

    /// Weight code at `(m, r, s, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the layer is shape-only or the index is out of bounds.
    #[must_use]
    #[inline]
    pub fn weight(&self, m: usize, r: usize, s: usize, c: usize) -> u8 {
        let spec = &self.spec;
        debug_assert!(m < spec.m && r < spec.r && s < spec.s && c < spec.c);
        let idx = ((m * spec.r + r) * spec.s + s) * spec.c + c;
        self.weights
            .as_ref()
            .expect("shape-only layer has no weights")[idx]
    }

    /// Sum of weight codes of filter `m` — the `W1(m)` zero-point
    /// correction term, precomputed because weights are stationary.
    ///
    /// # Panics
    ///
    /// Panics if the layer is shape-only.
    #[must_use]
    pub fn filter_code_sum(&self, m: usize) -> i64 {
        let spec = &self.spec;
        let w = self
            .weights
            .as_ref()
            .expect("shape-only layer has no weights");
        let per_filter = spec.r * spec.s * spec.c;
        w[m * per_filter..(m + 1) * per_filter]
            .iter()
            .map(|&q| i64::from(q))
            .sum()
    }

    /// Bias of filter `m` (0 when no bias is configured).
    #[must_use]
    pub fn bias_of(&self, m: usize) -> i64 {
        self.bias.get(m).copied().unwrap_or(0)
    }

    /// Smallest and largest weight codes across every filter, or `None` for
    /// a shape-only layer. Seeds the value-range analysis with the actual
    /// weight interval instead of the full `[0, 255]` code space.
    #[must_use]
    pub fn weight_code_bounds(&self) -> Option<(u8, u8)> {
        let w = self.weights.as_ref()?;
        let mut lo = u8::MAX;
        let mut hi = u8::MIN;
        for &q in w {
            lo = lo.min(q);
            hi = hi.max(q);
        }
        Some((lo.min(hi), hi))
    }

    /// Largest per-filter code sum `W1(m)`, or `None` for a shape-only
    /// layer (bounds the zero-point-correction term exactly).
    #[must_use]
    pub fn filter_code_sum_bounds(&self) -> Option<(i64, i64)> {
        self.weights.as_ref()?;
        let sums = (0..self.spec.m).map(|m| self.filter_code_sum(m));
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for s in sums {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        Some((lo.min(hi), hi.max(lo)))
    }

    /// Smallest and largest per-filter bias, `(0, 0)` when no bias is
    /// configured.
    #[must_use]
    pub fn bias_bounds(&self) -> (i64, i64) {
        let lo = self.bias.iter().copied().min().unwrap_or(0);
        let hi = self.bias.iter().copied().max().unwrap_or(0);
        (lo, hi)
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Sliding-window maximum (Section IV-D max dataflow).
    Max,
    /// Sliding-window average: in-cache sum then divide by the window size.
    Avg,
}

/// A pooling sub-layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Pool2d {
    /// Sub-layer name.
    pub name: String,
    /// Pooling flavor.
    pub kind: PoolKind,
    /// Window side (square windows, as everywhere in Inception v3).
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Spatial padding policy.
    pub padding: Padding,
}

impl Pool2d {
    /// Output shape for a given input shape (channels preserved).
    #[must_use]
    pub fn out_shape(&self, input: Shape) -> Shape {
        Shape::new(
            conv_out_dim(input.h, self.k, self.stride, self.padding),
            conv_out_dim(input.w, self.k, self.stride, self.padding),
            input.c,
        )
    }
}

/// One operation inside an Inception branch.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchOp {
    /// Convolution step.
    Conv(Conv2d),
    /// Pooling step (the avg-pool that precedes pool-projection 1x1s, or
    /// the raw max-pool branch of the reduction blocks).
    Pool(Pool2d),
    /// Terminal fan-out: several convolutions consume the branch's current
    /// tensor and their outputs concatenate (the 1x3/3x1 expansion of
    /// Mixed 7b/7c). Only valid as the last op of a branch.
    Split(Vec<Conv2d>),
}

impl BranchOp {
    /// Output shape of this step.
    ///
    /// # Panics
    ///
    /// Panics if split convolutions disagree on spatial output dims.
    #[must_use]
    pub fn out_shape(&self, input: Shape) -> Shape {
        match self {
            BranchOp::Conv(c) => c.spec.out_shape(input),
            BranchOp::Pool(p) => p.out_shape(input),
            BranchOp::Split(convs) => {
                let shapes: Vec<Shape> = convs.iter().map(|c| c.spec.out_shape(input)).collect();
                let (h, w) = (shapes[0].h, shapes[0].w);
                for s in &shapes {
                    assert_eq!((s.h, s.w), (h, w), "split spatial dims differ");
                }
                Shape::new(h, w, shapes.iter().map(|s| s.c).sum())
            }
        }
    }

    /// Step name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            BranchOp::Conv(c) => &c.spec.name,
            BranchOp::Pool(p) => &p.name,
            BranchOp::Split(_) => "split",
        }
    }
}

/// One branch of an Inception mixed block: a chain of steps applied to the
/// block input; branch outputs are concatenated along channels.
#[derive(Debug, Clone, PartialEq)]
pub struct Branch {
    /// The steps, first consuming the block input.
    pub ops: Vec<BranchOp>,
}

impl Branch {
    /// Builds a branch from steps.
    ///
    /// # Panics
    ///
    /// Panics on an empty branch or a `Split` that is not the last op.
    #[must_use]
    pub fn new(ops: Vec<BranchOp>) -> Self {
        assert!(!ops.is_empty(), "branch must contain at least one op");
        for op in &ops[..ops.len() - 1] {
            assert!(
                !matches!(op, BranchOp::Split(_)),
                "split is only valid as the final branch op"
            );
        }
        Branch { ops }
    }

    /// Output shape of the whole branch.
    #[must_use]
    pub fn out_shape(&self, input: Shape) -> Shape {
        self.ops.iter().fold(input, |s, op| op.out_shape(s))
    }
}

/// An Inception mixed block: parallel branches concatenated along channels.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedBlock {
    /// Block name (e.g. `"Mixed_5b"`).
    pub name: String,
    /// Parallel branches (computed serially by Neural Cache, Section IV).
    pub branches: Vec<Branch>,
}

impl MixedBlock {
    /// Output shape: common spatial dims, concatenated channels.
    ///
    /// # Panics
    ///
    /// Panics if branches disagree on spatial output dimensions.
    #[must_use]
    pub fn out_shape(&self, input: Shape) -> Shape {
        let shapes: Vec<Shape> = self.branches.iter().map(|b| b.out_shape(input)).collect();
        let (h, w) = (shapes[0].h, shapes[0].w);
        for s in &shapes {
            assert_eq!(
                (s.h, s.w),
                (h, w),
                "{}: branch spatial dims differ",
                self.name
            );
        }
        Shape::new(h, w, shapes.iter().map(|s| s.c).sum())
    }
}

/// A top-level network layer, matching the granularity of the paper's
/// Table I (one row per `Layer`).
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Plain convolution (includes the final classifier: "Fully Connected
    /// layers are converted into convolution layers in TensorFlow").
    Conv(Conv2d),
    /// Plain pooling layer.
    Pool(Pool2d),
    /// Inception mixed block.
    Mixed(MixedBlock),
}

impl Layer {
    /// Layer name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Layer::Conv(c) => &c.spec.name,
            Layer::Pool(p) => &p.name,
            Layer::Mixed(m) => &m.name,
        }
    }

    /// Output shape for a given input shape.
    #[must_use]
    pub fn out_shape(&self, input: Shape) -> Shape {
        match self {
            Layer::Conv(c) => c.spec.out_shape(input),
            Layer::Pool(p) => p.out_shape(input),
            Layer::Mixed(m) => m.out_shape(input),
        }
    }

    /// Iterates over every convolution sub-layer within this layer.
    pub fn conv_sublayers(&self) -> impl Iterator<Item = &Conv2d> {
        let convs: Vec<&Conv2d> = match self {
            Layer::Conv(c) => vec![c],
            Layer::Pool(_) => Vec::new(),
            Layer::Mixed(m) => m
                .branches
                .iter()
                .flat_map(|b| &b.ops)
                .flat_map(|op| match op {
                    BranchOp::Conv(c) => vec![c],
                    BranchOp::Pool(_) => Vec::new(),
                    BranchOp::Split(cs) => cs.iter().collect(),
                })
                .collect(),
        };
        convs.into_iter()
    }

    /// Mutable counterpart of [`Layer::conv_sublayers`] (used by workload
    /// transforms such as weight pruning).
    pub fn conv_sublayers_mut(&mut self) -> impl Iterator<Item = &mut Conv2d> {
        let convs: Vec<&mut Conv2d> = match self {
            Layer::Conv(c) => vec![c],
            Layer::Pool(_) => Vec::new(),
            Layer::Mixed(m) => m
                .branches
                .iter_mut()
                .flat_map(|b| &mut b.ops)
                .flat_map(|op| match op {
                    BranchOp::Conv(c) => vec![c],
                    BranchOp::Pool(_) => Vec::new(),
                    BranchOp::Split(cs) => cs.iter_mut().collect(),
                })
                .collect(),
        };
        convs.into_iter()
    }
}

/// A whole network: input description plus the layer chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Network name.
    pub name: String,
    /// Input tensor shape (Inception v3: 299x299x3).
    pub input_shape: Shape,
    /// Input quantization parameters.
    pub input_quant: ActQuant,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Input shape of each layer, in order (element `i` feeds layer `i`).
    #[must_use]
    pub fn layer_inputs(&self) -> Vec<Shape> {
        let mut shapes = Vec::with_capacity(self.layers.len());
        let mut cur = self.input_shape;
        for layer in &self.layers {
            shapes.push(cur);
            cur = layer.out_shape(cur);
        }
        shapes
    }

    /// Final output shape.
    #[must_use]
    pub fn output_shape(&self) -> Shape {
        self.layers
            .iter()
            .fold(self.input_shape, |s, l| l.out_shape(s))
    }

    /// Total filter bytes across all convolution sub-layers (8-bit codes).
    #[must_use]
    pub fn total_filter_bytes(&self) -> usize {
        self.layers
            .iter()
            .flat_map(Layer::conv_sublayers)
            .map(|c| c.spec.weight_len())
            .sum()
    }

    /// Total number of convolution sub-layers (the paper counts 94 for
    /// Inception v3).
    #[must_use]
    pub fn conv_sublayer_count(&self) -> usize {
        self.layers.iter().flat_map(Layer::conv_sublayers).count()
    }

    /// Checks that all shapes chain correctly (runs the whole shape
    /// propagation, panicking on mismatch) and returns the output shape.
    #[must_use]
    pub fn validate(&self) -> Shape {
        self.output_shape()
    }

    /// Whether every convolution sub-layer carries weights (required for
    /// functional execution).
    #[must_use]
    pub fn has_weights(&self) -> bool {
        self.layers
            .iter()
            .flat_map(Layer::conv_sublayers)
            .all(|c| c.weights.is_some())
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} layers ({} conv sub-layers), input {}, output {}",
            self.name,
            self.layers.len(),
            self.conv_sublayer_count(),
            self.input_shape,
            self.output_shape()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, r: usize, c: usize, m: usize, stride: usize, padding: Padding) -> ConvSpec {
        ConvSpec {
            name: name.into(),
            r,
            s: r,
            c,
            m,
            stride,
            padding,
            relu: true,
        }
    }

    #[test]
    fn conv_shapes_and_counts() {
        let s = spec("c", 3, 32, 64, 1, Padding::Same);
        let out = s.out_shape(Shape::new(147, 147, 32));
        assert_eq!(out, Shape::new(147, 147, 64));
        assert_eq!(s.weight_len(), 3 * 3 * 32 * 64);
        assert_eq!(s.macs_per_output(), 288);
        assert_eq!(s.window(), 9);
    }

    #[test]
    fn conv_weight_indexing() {
        let s = spec("c", 2, 3, 2, 1, Padding::Valid);
        let weights: Vec<u8> = (0..s.weight_len() as u32)
            .map(|i| (i % 251) as u8)
            .collect();
        let c = Conv2d::with_weights(s, weights.clone(), WeightQuant::default(), vec![]);
        assert_eq!(c.weight(0, 0, 0, 0), weights[0]);
        assert_eq!(c.weight(1, 1, 1, 2), *weights.last().unwrap());
        let sum0: i64 = weights[..12].iter().map(|&q| i64::from(q)).sum();
        assert_eq!(c.filter_code_sum(0), sum0);
        assert_eq!(c.bias_of(0), 0);
    }

    #[test]
    fn mixed_block_concatenates_channels() {
        let b1 = Branch::new(vec![BranchOp::Conv(Conv2d::shape_only(spec(
            "b1",
            1,
            192,
            64,
            1,
            Padding::Same,
        )))]);
        let b2 = Branch::new(vec![
            BranchOp::Conv(Conv2d::shape_only(spec(
                "b2a",
                1,
                192,
                48,
                1,
                Padding::Same,
            ))),
            BranchOp::Conv(Conv2d::shape_only(spec("b2b", 5, 48, 64, 1, Padding::Same))),
        ]);
        let block = MixedBlock {
            name: "Mixed_test".into(),
            branches: vec![b1, b2],
        };
        let out = block.out_shape(Shape::new(35, 35, 192));
        assert_eq!(out, Shape::new(35, 35, 128));
    }

    #[test]
    fn model_shape_chain() {
        let model = Model {
            name: "tiny".into(),
            input_shape: Shape::new(8, 8, 4),
            input_quant: ActQuant::default(),
            layers: vec![
                Layer::Conv(Conv2d::shape_only(spec("c1", 3, 4, 8, 1, Padding::Same))),
                Layer::Pool(Pool2d {
                    name: "p1".into(),
                    kind: PoolKind::Max,
                    k: 2,
                    stride: 2,
                    padding: Padding::Valid,
                }),
                Layer::Conv(Conv2d::shape_only(spec("c2", 3, 8, 16, 1, Padding::Valid))),
            ],
        };
        assert_eq!(model.validate(), Shape::new(2, 2, 16));
        assert_eq!(
            model.layer_inputs(),
            vec![
                Shape::new(8, 8, 4),
                Shape::new(8, 8, 8),
                Shape::new(4, 4, 8),
            ]
        );
        assert_eq!(model.conv_sublayer_count(), 2);
        assert!(!model.has_weights());
        assert_eq!(model.total_filter_bytes(), 3 * 3 * 4 * 8 + 3 * 3 * 8 * 16);
    }
}
