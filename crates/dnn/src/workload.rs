//! Synthetic workload generators: random inputs and small CNNs for tests,
//! examples, and the functional cross-validation harness.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::{
    ActQuant, Branch, BranchOp, Conv2d, ConvSpec, Layer, MixedBlock, Model, Padding, Pool2d,
    PoolKind, QTensor, Shape, WeightQuant,
};

/// Generates a random quantized input tensor with the given parameters.
#[must_use]
pub fn random_input(shape: Shape, params: ActQuant, seed: u64) -> QTensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; shape.len()];
    rng.fill_bytes(&mut data);
    QTensor::from_vec(shape, params, data)
}

/// Generates a random convolution sub-layer with seeded weights.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the paper's (R,S,C,M,U,pad) nomenclature
pub fn random_conv(
    name: &str,
    (r, s): (usize, usize),
    c: usize,
    m: usize,
    stride: usize,
    padding: Padding,
    relu: bool,
    seed: u64,
) -> Conv2d {
    let mut rng = SmallRng::seed_from_u64(seed);
    let spec = ConvSpec {
        name: name.to_owned(),
        r,
        s,
        c,
        m,
        stride,
        padding,
        relu,
    };
    let mut weights = vec![0u8; spec.weight_len()];
    rng.fill_bytes(&mut weights);
    let w_quant = WeightQuant {
        scale: 0.01,
        zero_point: 128,
    };
    let bias: Vec<i64> = (0..m).map(|_| rng.gen_range(-300..300)).collect();
    Conv2d::with_weights(spec, weights, w_quant, bias)
}

/// Prunes a convolution's weight codes, the workload shape behind
/// bit-slice round skipping: every code is masked to its low `keep_bits`
/// bits (low-magnitude quantization — the top `8 - keep_bits` bit-slice
/// rows become all-zero on every lane), and an additional `zero_fraction`
/// of the codes is zeroed outright (magnitude pruning). The weight zero
/// point moves to 0 so pruned codes decode to exactly-zero real weights.
///
/// Shape-only layers pass through unchanged.
///
/// # Panics
///
/// Panics if `keep_bits` is 0 or exceeds 8, or `zero_fraction` is outside
/// `[0, 1]`.
#[must_use]
pub fn prune_conv(mut conv: Conv2d, keep_bits: u32, zero_fraction: f64, seed: u64) -> Conv2d {
    assert!((1..=8).contains(&keep_bits), "keep_bits in 1..=8");
    assert!(
        (0.0..=1.0).contains(&zero_fraction),
        "zero_fraction in [0, 1]"
    );
    let mask = ((1u16 << keep_bits) - 1) as u8;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5041_5253_4541_u64);
    if let Some(w) = conv.weights.as_mut() {
        for q in w.iter_mut() {
            *q &= mask;
            if zero_fraction > 0.0 && rng.gen_range(0.0..1.0) < zero_fraction {
                *q = 0;
            }
        }
    }
    conv.w_quant = WeightQuant {
        scale: conv.w_quant.scale,
        zero_point: 0,
    };
    conv
}

/// Quantization parameters of a post-ReLU activation tensor: zero point 0
/// (codes are non-negative reals), so an exactly-zero activation is the
/// all-zero code `0x00` — the byte shape dynamic input-bit round skipping
/// feeds on. (With a symmetric range the zero code would be `0x80`, which
/// is bit-*dense*.)
#[must_use]
pub fn relu_act_quant() -> ActQuant {
    ActQuant::from_range(0.0, 6.0)
}

/// Generates a ReLU-sparse activation tensor with controllable sparsity:
/// each code is exactly zero with probability `zero_fraction` (the `ReLU`
/// footprint), and surviving codes are masked to their low `keep_bits`
/// bits (the low-magnitude tail real post-ReLU distributions have). Uses
/// [`relu_act_quant`] so zero codes decode to exactly-zero reals.
///
/// # Panics
///
/// Panics if `zero_fraction` is outside `[0, 1]` or `keep_bits` is not in
/// `1..=8`.
#[must_use]
pub fn relu_sparse_input(shape: Shape, zero_fraction: f64, keep_bits: u32, seed: u64) -> QTensor {
    assert!(
        (0.0..=1.0).contains(&zero_fraction),
        "zero_fraction in [0, 1]"
    );
    assert!((1..=8).contains(&keep_bits), "keep_bits in 1..=8");
    let mask = ((1u16 << keep_bits) - 1) as u8;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5245_4c55_u64);
    let mut data = vec![0u8; shape.len()];
    for q in &mut data {
        if rng.gen_range(0.0..1.0) >= zero_fraction {
            *q = (rng.next_u32() as u8) & mask;
        }
    }
    QTensor::from_vec(shape, relu_act_quant(), data)
}

/// [`mini_inception`] re-quantized to consume post-ReLU inputs
/// ([`relu_act_quant`], zero point 0) — the multi-layer workload for
/// dynamic input-activation round skipping. Weights stay dense-random, so
/// any skip comes from the activations alone.
#[must_use]
pub fn relu_sparse_mini(seed: u64) -> Model {
    let mut model = mini_inception(seed);
    model.name = "relu-sparse-mini".into();
    model.input_quant = relu_act_quant();
    model
}

/// A single dense-random convolution consuming post-ReLU inputs — the
/// focused workload for predicted-vs-executed input-skip cross-checks and
/// the detect-overhead break-even measurement. VALID padding, so no
/// padding bytes contribute zeros: with a zero-point-0 input quant, SAME
/// padding alone elides ~20% of rounds (padded taps are all-zero bytes),
/// which would mask the break-even.
#[must_use]
pub fn relu_sparse_conv_model(seed: u64) -> Model {
    let conv = random_conv("relu_conv", (3, 3), 8, 4, 1, Padding::Valid, true, seed);
    let mut model = single_conv_model(conv, Shape::new(6, 6, 8));
    model.input_quant = relu_act_quant();
    model
}

/// [`mini_inception`] with every convolution pruned to 2-bit codes and 50%
/// exact zeros — the dense-vs-pruned evaluation workload for
/// `SparsityMode::SkipZeroRows` (at least the top six multiplier-bit
/// rounds of every MAC are elidable).
#[must_use]
pub fn pruned_inception(seed: u64) -> Model {
    let mut model = mini_inception(seed);
    model.name = "pruned-inception".into();
    let mut salt = 0u64;
    for layer in &mut model.layers {
        for conv in layer.conv_sublayers_mut() {
            salt += 1;
            *conv = prune_conv(conv.clone(), 2, 0.5, seed.wrapping_add(salt));
        }
    }
    model
}

/// A single pruned convolution model (keep 2 bits, half the codes zero) —
/// the focused workload for predicted-vs-executed skip cross-checks.
#[must_use]
pub fn pruned_conv_model(seed: u64) -> Model {
    let conv = prune_conv(
        random_conv("pruned_conv", (3, 3), 8, 4, 1, Padding::Same, true, seed),
        2,
        0.5,
        seed,
    );
    single_conv_model(conv, Shape::new(6, 6, 8))
}

/// A small but structurally complete CNN exercising every layer kind Neural
/// Cache supports: conv (VALID + SAME, strided), max pool, a mixed block
/// with a pool branch and shared-range concat, average pooling and a final
/// classifier. Designed to run the functional executor in well under a
/// second.
#[must_use]
pub fn tiny_cnn(seed: u64) -> Model {
    let s = |k| seed.wrapping_mul(1000).wrapping_add(k);
    let mixed = MixedBlock {
        name: "tiny_mixed".into(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(random_conv(
                "tiny_mixed/b0_1x1",
                (1, 1),
                16,
                8,
                1,
                Padding::Same,
                true,
                s(3),
            ))]),
            Branch::new(vec![
                BranchOp::Conv(random_conv(
                    "tiny_mixed/b1_1x1",
                    (1, 1),
                    16,
                    4,
                    1,
                    Padding::Same,
                    true,
                    s(4),
                )),
                BranchOp::Conv(random_conv(
                    "tiny_mixed/b1_3x3",
                    (3, 3),
                    4,
                    8,
                    1,
                    Padding::Same,
                    true,
                    s(5),
                )),
            ]),
            Branch::new(vec![
                BranchOp::Pool(Pool2d {
                    name: "tiny_mixed/b2_pool".into(),
                    kind: PoolKind::Avg,
                    k: 3,
                    stride: 1,
                    padding: Padding::Same,
                }),
                BranchOp::Conv(random_conv(
                    "tiny_mixed/b2_proj",
                    (1, 1),
                    16,
                    4,
                    1,
                    Padding::Same,
                    true,
                    s(6),
                )),
            ]),
        ],
    };
    let model = Model {
        name: "tiny-cnn".into(),
        input_shape: Shape::new(12, 12, 4),
        input_quant: ActQuant::from_range(-1.0, 1.0),
        layers: vec![
            Layer::Conv(random_conv(
                "conv1",
                (3, 3),
                4,
                8,
                1,
                Padding::Same,
                true,
                s(1),
            )),
            Layer::Pool(Pool2d {
                name: "pool1".into(),
                kind: PoolKind::Max,
                k: 2,
                stride: 2,
                padding: Padding::Valid,
            }),
            Layer::Conv(random_conv(
                "conv2",
                (3, 3),
                8,
                16,
                1,
                Padding::Valid,
                true,
                s(2),
            )),
            Layer::Mixed(mixed),
            Layer::Pool(Pool2d {
                name: "gap".into(),
                kind: PoolKind::Avg,
                k: 4,
                stride: 1,
                padding: Padding::Valid,
            }),
            Layer::Conv(random_conv(
                "classifier",
                (1, 1),
                20,
                10,
                1,
                Padding::Valid,
                false,
                s(7),
            )),
        ],
    };
    debug_assert_eq!(model.validate(), Shape::new(1, 1, 10));
    model
}

/// A miniature Inception: one block of every family the real network uses —
/// an Inception-A-style block (1x1 / 5x5 / double-3x3 / avgpool-proj), a
/// reduction block with a **raw max-pool branch** (the Mixed 6a/7a pattern
/// whose pool output concatenates with requantized conv branches), and an
/// Inception-C-style block with **terminal splits** (the Mixed 7b/7c 1x3 +
/// 3x1 fan-out). Exercises every orchestration path of the executors at toy
/// scale.
#[must_use]
pub fn mini_inception(seed: u64) -> Model {
    let s = |k| seed.wrapping_mul(7919).wrapping_add(k);
    let c1 = |name: &str, k: (usize, usize), c, m, sd| {
        random_conv(name, k, c, m, 1, Padding::Same, true, sd)
    };

    // Block A on 8x8x8: branches 4 + (3 -> 4) + (3 -> 4 -> 4) + (pool -> 2).
    let block_a = MixedBlock {
        name: "mini_a".into(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(c1("mini_a/b0", (1, 1), 8, 4, s(1)))]),
            Branch::new(vec![
                BranchOp::Conv(c1("mini_a/b1_1x1", (1, 1), 8, 3, s(2))),
                BranchOp::Conv(c1("mini_a/b1_5x5", (5, 5), 3, 4, s(3))),
            ]),
            Branch::new(vec![
                BranchOp::Conv(c1("mini_a/b2_1x1", (1, 1), 8, 3, s(4))),
                BranchOp::Conv(c1("mini_a/b2_3x3a", (3, 3), 3, 4, s(5))),
                BranchOp::Conv(c1("mini_a/b2_3x3b", (3, 3), 4, 4, s(6))),
            ]),
            Branch::new(vec![
                BranchOp::Pool(Pool2d {
                    name: "mini_a/b3_pool".into(),
                    kind: PoolKind::Avg,
                    k: 3,
                    stride: 1,
                    padding: Padding::Same,
                }),
                BranchOp::Conv(c1("mini_a/b3_proj", (1, 1), 8, 2, s(7))),
            ]),
        ],
    };

    // Reduction block on 8x8x14 -> 3x3: stride-2 conv + raw max-pool branch.
    let block_r = MixedBlock {
        name: "mini_r".into(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(random_conv(
                "mini_r/b0_3x3",
                (3, 3),
                14,
                6,
                2,
                Padding::Valid,
                true,
                s(8),
            ))]),
            Branch::new(vec![BranchOp::Pool(Pool2d {
                name: "mini_r/b1_pool".into(),
                kind: PoolKind::Max,
                k: 3,
                stride: 2,
                padding: Padding::Valid,
            })]),
        ],
    };

    // Block C on 3x3x20: a split branch (1x3 + 3x1) plus a plain 1x1.
    let block_c = MixedBlock {
        name: "mini_c".into(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(c1("mini_c/b0", (1, 1), 20, 4, s(9)))]),
            Branch::new(vec![
                BranchOp::Conv(c1("mini_c/b1_1x1", (1, 1), 20, 6, s(10))),
                BranchOp::Split(vec![
                    c1("mini_c/b1_1x3", (1, 3), 6, 4, s(11)),
                    c1("mini_c/b1_3x1", (3, 1), 6, 4, s(12)),
                ]),
            ]),
        ],
    };

    let model = Model {
        name: "mini-inception".into(),
        input_shape: Shape::new(8, 8, 8),
        input_quant: ActQuant::from_range(-1.0, 1.0),
        layers: vec![
            Layer::Mixed(block_a),
            Layer::Mixed(block_r),
            Layer::Mixed(block_c),
            Layer::Pool(Pool2d {
                name: "mini_gap".into(),
                kind: PoolKind::Avg,
                k: 3,
                stride: 1,
                padding: Padding::Valid,
            }),
            Layer::Conv(random_conv(
                "mini_logits",
                (1, 1),
                12,
                5,
                1,
                Padding::Valid,
                false,
                s(13),
            )),
        ],
    };
    debug_assert_eq!(model.validate(), Shape::new(1, 1, 5));
    model
}

/// One traffic class of a serving workload mix: a named share of the
/// request stream with an admission priority (lower = served first) and a
/// latency-SLO scale relative to the mix's base SLO (interactive traffic
/// gets a tight budget, best-effort a loose one).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficClass {
    /// Class name (e.g. `"interactive"`).
    pub name: &'static str,
    /// Share of the request stream in `[0, 1]`; a mix's shares sum to 1.
    pub share: f64,
    /// Admission priority: lower values dequeue first.
    pub priority: u8,
    /// Latency-SLO multiplier relative to the mix's base SLO.
    pub slo_scale: f64,
}

/// The default two-class serving mix: 70% latency-sensitive interactive
/// requests served ahead of 30% best-effort batch requests with a 4x looser
/// latency budget. Serving simulators draw each request's class from these
/// shares.
#[must_use]
pub fn default_traffic_mix() -> Vec<TrafficClass> {
    vec![
        TrafficClass {
            name: "interactive",
            share: 0.7,
            priority: 0,
            slo_scale: 1.0,
        },
        TrafficClass {
            name: "best-effort",
            share: 0.3,
            priority: 1,
            slo_scale: 4.0,
        },
    ]
}

/// Draws a class index from `mix` shares using one uniform draw in
/// `[0, 1)` (requests map deterministically from the trace RNG stream).
/// Falls back to the last class when rounding leaves a sliver.
#[must_use]
pub fn draw_class(mix: &[TrafficClass], uniform: f64) -> usize {
    let mut acc = 0.0;
    for (i, class) in mix.iter().enumerate() {
        acc += class.share;
        if uniform < acc {
            return i;
        }
    }
    mix.len().saturating_sub(1)
}

/// A single-conv model, handy for focused equivalence tests.
#[must_use]
pub fn single_conv_model(conv: Conv2d, input_shape: Shape) -> Model {
    Model {
        name: format!("single-{}", conv.spec.name),
        input_shape,
        input_quant: ActQuant::from_range(-1.0, 1.0),
        layers: vec![Layer::Conv(conv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_model;

    #[test]
    fn tiny_cnn_runs_end_to_end() {
        let model = tiny_cnn(42);
        assert!(model.has_weights());
        let input = random_input(model.input_shape, model.input_quant, 1);
        let result = run_model(&model, &input);
        assert_eq!(result.output.shape(), Shape::new(1, 1, 10));
        assert_eq!(result.layers.len(), 6);
        // Deterministic.
        let again = run_model(&model, &input);
        assert_eq!(result.output, again.output);
    }

    #[test]
    fn tiny_cnn_is_seed_sensitive() {
        let input = random_input(Shape::new(12, 12, 4), ActQuant::from_range(-1.0, 1.0), 1);
        let a = run_model(&tiny_cnn(1), &input);
        let b = run_model(&tiny_cnn(2), &input);
        assert_ne!(a.output, b.output);
    }

    #[test]
    fn mini_inception_runs_and_covers_all_block_families() {
        let model = mini_inception(11);
        assert!(model.has_weights());
        // Structure checks: a split terminal, a pool-final branch, and an
        // avgpool-projection branch all present.
        let has_split = model.layers.iter().any(|l| {
            matches!(l, Layer::Mixed(b) if b.branches.iter().any(|br| {
                matches!(br.ops.last(), Some(BranchOp::Split(_)))
            }))
        });
        let has_pool_final = model.layers.iter().any(|l| {
            matches!(l, Layer::Mixed(b) if b.branches.iter().any(|br| {
                matches!(br.ops.last(), Some(BranchOp::Pool(_)))
            }))
        });
        assert!(has_split, "mini-inception must exercise terminal splits");
        assert!(
            has_pool_final,
            "mini-inception must exercise pool-final branches"
        );
        let input = random_input(model.input_shape, model.input_quant, 4);
        let out = run_model(&model, &input);
        assert_eq!(out.output.shape(), Shape::new(1, 1, 5));
    }

    #[test]
    fn prune_conv_masks_and_zeroes_codes() {
        let conv = prune_conv(
            random_conv("p", (3, 3), 8, 4, 1, Padding::Same, true, 3),
            2,
            0.5,
            9,
        );
        let w = conv.weights.as_ref().unwrap();
        assert!(w.iter().all(|&q| q < 4), "codes masked to 2 bits");
        let zeros = w.iter().filter(|&&q| q == 0).count();
        // ~50% magnitude-pruned plus the codes that were already 0 mod 4.
        assert!(
            zeros as f64 / w.len() as f64 > 0.4,
            "{zeros}/{} zero codes",
            w.len()
        );
        assert_eq!(conv.w_quant.zero_point, 0, "zero code = zero weight");
        // Deterministic.
        let again = prune_conv(
            random_conv("p", (3, 3), 8, 4, 1, Padding::Same, true, 3),
            2,
            0.5,
            9,
        );
        assert_eq!(conv.weights, again.weights);
    }

    #[test]
    fn pruned_inception_keeps_structure_and_prunes_every_conv() {
        let dense = mini_inception(11);
        let pruned = pruned_inception(11);
        assert_eq!(pruned.layers.len(), dense.layers.len());
        assert_eq!(pruned.validate(), Shape::new(1, 1, 5));
        let mut convs = 0;
        for layer in &pruned.layers {
            for conv in layer.conv_sublayers() {
                convs += 1;
                assert!(
                    conv.weights.as_ref().unwrap().iter().all(|&q| q < 4),
                    "{} not pruned",
                    conv.spec.name
                );
            }
        }
        assert_eq!(convs, dense.conv_sublayer_count());
        // Still runs end to end.
        let input = random_input(pruned.input_shape, pruned.input_quant, 2);
        let out = run_model(&pruned, &input);
        assert_eq!(out.output.shape(), Shape::new(1, 1, 5));
    }

    #[test]
    fn pruned_conv_model_is_a_weighted_single_conv() {
        let model = pruned_conv_model(5);
        assert!(model.has_weights());
        assert_eq!(model.layers.len(), 1);
        let input = random_input(model.input_shape, model.input_quant, 6);
        let _ = run_model(&model, &input);
    }

    #[test]
    fn relu_sparse_inputs_have_zero_point_zero_and_controlled_density() {
        let shape = Shape::new(16, 16, 8);
        let t = relu_sparse_input(shape, 0.6, 3, 11);
        assert_eq!(t.params().zero_point, 0, "ReLU quant pins zero at code 0");
        let zeros = t.data().iter().filter(|&&q| q == 0).count();
        let frac = zeros as f64 / t.data().len() as f64;
        assert!(frac > 0.55, "zero fraction {frac:.2} too low");
        assert!(t.data().iter().all(|&q| q < 8), "codes masked to 3 bits");
        // Deterministic, seed-sensitive.
        assert_eq!(t, relu_sparse_input(shape, 0.6, 3, 11));
        assert_ne!(t, relu_sparse_input(shape, 0.6, 3, 12));
        // Density 0 keeps every code zero; density bound is honored.
        let dense = relu_sparse_input(shape, 0.0, 8, 5);
        assert!(dense.data().iter().any(|&q| q > 127), "full-width codes");
        let empty = relu_sparse_input(shape, 1.0, 8, 5);
        assert!(empty.data().iter().all(|&q| q == 0));
    }

    #[test]
    fn relu_sparse_models_run_end_to_end() {
        let model = relu_sparse_mini(7);
        assert_eq!(model.input_quant.zero_point, 0);
        let input = relu_sparse_input(model.input_shape, 0.5, 4, 8);
        let out = run_model(&model, &input);
        assert_eq!(out.output.shape(), Shape::new(1, 1, 5));
        let single = relu_sparse_conv_model(7);
        assert_eq!(single.layers.len(), 1);
        let input = relu_sparse_input(single.input_shape, 0.5, 4, 9);
        let _ = run_model(&single, &input);
    }

    #[test]
    fn traffic_mix_shares_sum_to_one_and_draw_covers_classes() {
        let mix = default_traffic_mix();
        let total: f64 = mix.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(mix.windows(2).all(|w| w[0].priority <= w[1].priority));
        assert_eq!(draw_class(&mix, 0.0), 0);
        assert_eq!(draw_class(&mix, 0.699), 0);
        assert_eq!(draw_class(&mix, 0.701), 1);
        assert_eq!(draw_class(&mix, 0.9999), 1);
        // Degenerate draws clamp to the last class.
        assert_eq!(draw_class(&mix, 1.0), 1);
    }

    #[test]
    fn random_input_is_deterministic() {
        let shape = Shape::new(4, 4, 2);
        let q = ActQuant::default();
        assert_eq!(random_input(shape, q, 9), random_input(shape, q, 9));
        assert_ne!(random_input(shape, q, 9), random_input(shape, q, 10));
    }
}
