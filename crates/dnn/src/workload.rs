//! Synthetic workload generators: random inputs and small CNNs for tests,
//! examples, and the functional cross-validation harness.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::{
    ActQuant, Branch, BranchOp, Conv2d, ConvSpec, Layer, MixedBlock, Model, Padding, Pool2d,
    PoolKind, QTensor, Shape, WeightQuant,
};

/// Generates a random quantized input tensor with the given parameters.
#[must_use]
pub fn random_input(shape: Shape, params: ActQuant, seed: u64) -> QTensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; shape.len()];
    rng.fill_bytes(&mut data);
    QTensor::from_vec(shape, params, data)
}

/// Generates a random convolution sub-layer with seeded weights.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the paper's (R,S,C,M,U,pad) nomenclature
pub fn random_conv(
    name: &str,
    (r, s): (usize, usize),
    c: usize,
    m: usize,
    stride: usize,
    padding: Padding,
    relu: bool,
    seed: u64,
) -> Conv2d {
    let mut rng = SmallRng::seed_from_u64(seed);
    let spec = ConvSpec {
        name: name.to_owned(),
        r,
        s,
        c,
        m,
        stride,
        padding,
        relu,
    };
    let mut weights = vec![0u8; spec.weight_len()];
    rng.fill_bytes(&mut weights);
    let w_quant = WeightQuant {
        scale: 0.01,
        zero_point: 128,
    };
    let bias: Vec<i64> = (0..m).map(|_| rng.gen_range(-300..300)).collect();
    Conv2d::with_weights(spec, weights, w_quant, bias)
}

/// A small but structurally complete CNN exercising every layer kind Neural
/// Cache supports: conv (VALID + SAME, strided), max pool, a mixed block
/// with a pool branch and shared-range concat, average pooling and a final
/// classifier. Designed to run the functional executor in well under a
/// second.
#[must_use]
pub fn tiny_cnn(seed: u64) -> Model {
    let s = |k| seed.wrapping_mul(1000).wrapping_add(k);
    let mixed = MixedBlock {
        name: "tiny_mixed".into(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(random_conv(
                "tiny_mixed/b0_1x1",
                (1, 1),
                16,
                8,
                1,
                Padding::Same,
                true,
                s(3),
            ))]),
            Branch::new(vec![
                BranchOp::Conv(random_conv(
                    "tiny_mixed/b1_1x1",
                    (1, 1),
                    16,
                    4,
                    1,
                    Padding::Same,
                    true,
                    s(4),
                )),
                BranchOp::Conv(random_conv(
                    "tiny_mixed/b1_3x3",
                    (3, 3),
                    4,
                    8,
                    1,
                    Padding::Same,
                    true,
                    s(5),
                )),
            ]),
            Branch::new(vec![
                BranchOp::Pool(Pool2d {
                    name: "tiny_mixed/b2_pool".into(),
                    kind: PoolKind::Avg,
                    k: 3,
                    stride: 1,
                    padding: Padding::Same,
                }),
                BranchOp::Conv(random_conv(
                    "tiny_mixed/b2_proj",
                    (1, 1),
                    16,
                    4,
                    1,
                    Padding::Same,
                    true,
                    s(6),
                )),
            ]),
        ],
    };
    let model = Model {
        name: "tiny-cnn".into(),
        input_shape: Shape::new(12, 12, 4),
        input_quant: ActQuant::from_range(-1.0, 1.0),
        layers: vec![
            Layer::Conv(random_conv(
                "conv1",
                (3, 3),
                4,
                8,
                1,
                Padding::Same,
                true,
                s(1),
            )),
            Layer::Pool(Pool2d {
                name: "pool1".into(),
                kind: PoolKind::Max,
                k: 2,
                stride: 2,
                padding: Padding::Valid,
            }),
            Layer::Conv(random_conv(
                "conv2",
                (3, 3),
                8,
                16,
                1,
                Padding::Valid,
                true,
                s(2),
            )),
            Layer::Mixed(mixed),
            Layer::Pool(Pool2d {
                name: "gap".into(),
                kind: PoolKind::Avg,
                k: 4,
                stride: 1,
                padding: Padding::Valid,
            }),
            Layer::Conv(random_conv(
                "classifier",
                (1, 1),
                20,
                10,
                1,
                Padding::Valid,
                false,
                s(7),
            )),
        ],
    };
    debug_assert_eq!(model.validate(), Shape::new(1, 1, 10));
    model
}

/// A miniature Inception: one block of every family the real network uses —
/// an Inception-A-style block (1x1 / 5x5 / double-3x3 / avgpool-proj), a
/// reduction block with a **raw max-pool branch** (the Mixed 6a/7a pattern
/// whose pool output concatenates with requantized conv branches), and an
/// Inception-C-style block with **terminal splits** (the Mixed 7b/7c 1x3 +
/// 3x1 fan-out). Exercises every orchestration path of the executors at toy
/// scale.
#[must_use]
pub fn mini_inception(seed: u64) -> Model {
    let s = |k| seed.wrapping_mul(7919).wrapping_add(k);
    let c1 = |name: &str, k: (usize, usize), c, m, sd| {
        random_conv(name, k, c, m, 1, Padding::Same, true, sd)
    };

    // Block A on 8x8x8: branches 4 + (3 -> 4) + (3 -> 4 -> 4) + (pool -> 2).
    let block_a = MixedBlock {
        name: "mini_a".into(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(c1("mini_a/b0", (1, 1), 8, 4, s(1)))]),
            Branch::new(vec![
                BranchOp::Conv(c1("mini_a/b1_1x1", (1, 1), 8, 3, s(2))),
                BranchOp::Conv(c1("mini_a/b1_5x5", (5, 5), 3, 4, s(3))),
            ]),
            Branch::new(vec![
                BranchOp::Conv(c1("mini_a/b2_1x1", (1, 1), 8, 3, s(4))),
                BranchOp::Conv(c1("mini_a/b2_3x3a", (3, 3), 3, 4, s(5))),
                BranchOp::Conv(c1("mini_a/b2_3x3b", (3, 3), 4, 4, s(6))),
            ]),
            Branch::new(vec![
                BranchOp::Pool(Pool2d {
                    name: "mini_a/b3_pool".into(),
                    kind: PoolKind::Avg,
                    k: 3,
                    stride: 1,
                    padding: Padding::Same,
                }),
                BranchOp::Conv(c1("mini_a/b3_proj", (1, 1), 8, 2, s(7))),
            ]),
        ],
    };

    // Reduction block on 8x8x14 -> 3x3: stride-2 conv + raw max-pool branch.
    let block_r = MixedBlock {
        name: "mini_r".into(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(random_conv(
                "mini_r/b0_3x3",
                (3, 3),
                14,
                6,
                2,
                Padding::Valid,
                true,
                s(8),
            ))]),
            Branch::new(vec![BranchOp::Pool(Pool2d {
                name: "mini_r/b1_pool".into(),
                kind: PoolKind::Max,
                k: 3,
                stride: 2,
                padding: Padding::Valid,
            })]),
        ],
    };

    // Block C on 3x3x20: a split branch (1x3 + 3x1) plus a plain 1x1.
    let block_c = MixedBlock {
        name: "mini_c".into(),
        branches: vec![
            Branch::new(vec![BranchOp::Conv(c1("mini_c/b0", (1, 1), 20, 4, s(9)))]),
            Branch::new(vec![
                BranchOp::Conv(c1("mini_c/b1_1x1", (1, 1), 20, 6, s(10))),
                BranchOp::Split(vec![
                    c1("mini_c/b1_1x3", (1, 3), 6, 4, s(11)),
                    c1("mini_c/b1_3x1", (3, 1), 6, 4, s(12)),
                ]),
            ]),
        ],
    };

    let model = Model {
        name: "mini-inception".into(),
        input_shape: Shape::new(8, 8, 8),
        input_quant: ActQuant::from_range(-1.0, 1.0),
        layers: vec![
            Layer::Mixed(block_a),
            Layer::Mixed(block_r),
            Layer::Mixed(block_c),
            Layer::Pool(Pool2d {
                name: "mini_gap".into(),
                kind: PoolKind::Avg,
                k: 3,
                stride: 1,
                padding: Padding::Valid,
            }),
            Layer::Conv(random_conv(
                "mini_logits",
                (1, 1),
                12,
                5,
                1,
                Padding::Valid,
                false,
                s(13),
            )),
        ],
    };
    debug_assert_eq!(model.validate(), Shape::new(1, 1, 5));
    model
}

/// A single-conv model, handy for focused equivalence tests.
#[must_use]
pub fn single_conv_model(conv: Conv2d, input_shape: Shape) -> Model {
    Model {
        name: format!("single-{}", conv.spec.name),
        input_shape,
        input_quant: ActQuant::from_range(-1.0, 1.0),
        layers: vec![Layer::Conv(conv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::run_model;

    #[test]
    fn tiny_cnn_runs_end_to_end() {
        let model = tiny_cnn(42);
        assert!(model.has_weights());
        let input = random_input(model.input_shape, model.input_quant, 1);
        let result = run_model(&model, &input);
        assert_eq!(result.output.shape(), Shape::new(1, 1, 10));
        assert_eq!(result.layers.len(), 6);
        // Deterministic.
        let again = run_model(&model, &input);
        assert_eq!(result.output, again.output);
    }

    #[test]
    fn tiny_cnn_is_seed_sensitive() {
        let input = random_input(Shape::new(12, 12, 4), ActQuant::from_range(-1.0, 1.0), 1);
        let a = run_model(&tiny_cnn(1), &input);
        let b = run_model(&tiny_cnn(2), &input);
        assert_ne!(a.output, b.output);
    }

    #[test]
    fn mini_inception_runs_and_covers_all_block_families() {
        let model = mini_inception(11);
        assert!(model.has_weights());
        // Structure checks: a split terminal, a pool-final branch, and an
        // avgpool-projection branch all present.
        let has_split = model.layers.iter().any(|l| {
            matches!(l, Layer::Mixed(b) if b.branches.iter().any(|br| {
                matches!(br.ops.last(), Some(BranchOp::Split(_)))
            }))
        });
        let has_pool_final = model.layers.iter().any(|l| {
            matches!(l, Layer::Mixed(b) if b.branches.iter().any(|br| {
                matches!(br.ops.last(), Some(BranchOp::Pool(_)))
            }))
        });
        assert!(has_split, "mini-inception must exercise terminal splits");
        assert!(
            has_pool_final,
            "mini-inception must exercise pool-final branches"
        );
        let input = random_input(model.input_shape, model.input_quant, 4);
        let out = run_model(&model, &input);
        assert_eq!(out.output.shape(), Shape::new(1, 1, 5));
    }

    #[test]
    fn random_input_is_deterministic() {
        let shape = Shape::new(4, 4, 2);
        let q = ActQuant::default();
        assert_eq!(random_input(shape, q, 9), random_input(shape, q, 9));
        assert_ne!(random_input(shape, q, 9), random_input(shape, q, 10));
    }
}
