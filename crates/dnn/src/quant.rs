//! The exact integer arithmetic specification of quantized inference.
//!
//! Neural Cache assumes 8-bit quantized inputs and weights (Section IV) and
//! re-quantizes outputs after every layer by computing the min and max of
//! the layer's accumulator values in-cache, letting the CPU derive two
//! scalar integers, and applying multiply/add/shift in-cache (Section IV-D).
//!
//! This module pins down that arithmetic **exactly**, in one place, so the
//! plain-Rust reference executor and the bit-serial in-cache executor are
//! bit-identical by construction:
//!
//! - activations: `real = scale * (q - zero_point)`, `q: u8`;
//! - weights: same affine form per layer;
//! - accumulator (all integer, zero-point corrected):
//!   `ACC = S1 - zp_w*S2 - zp_a*W1(m) + N*zp_w*zp_a + bias(m)` where
//!   `S1 = sum(q_w * q_a)`, `S2 = sum(q_a)`, `W1(m) = sum(q_w)` per filter;
//! - requantization: `q_out = min((max(ACC - acc_min, 0) * M) >> SH, 255)`
//!   with `M`/`SH` chosen deterministically from the layer's accumulator
//!   range.

use std::fmt;

/// Affine quantization parameters of an activation tensor:
/// `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActQuant {
    /// Real value of one quantization step.
    pub scale: f64,
    /// The `u8` code representing real zero.
    pub zero_point: i32,
}

impl ActQuant {
    /// Parameters covering the real range `[min, max]` with 256 levels.
    /// The range is widened to include zero so the zero point is exact.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or the values are not finite.
    #[must_use]
    pub fn from_range(min: f64, max: f64) -> Self {
        assert!(min.is_finite() && max.is_finite() && min <= max);
        let lo = min.min(0.0);
        let hi = max.max(0.0);
        let scale = ((hi - lo) / 255.0).max(f64::MIN_POSITIVE);
        let zero_point = (-lo / scale).round().clamp(0.0, 255.0) as i32;
        ActQuant { scale, zero_point }
    }

    /// Quantizes a real value (saturating).
    #[must_use]
    pub fn quantize(&self, real: f64) -> u8 {
        ((real / self.scale).round() + f64::from(self.zero_point)).clamp(0.0, 255.0) as u8
    }

    /// Dequantizes a code back to a real value.
    #[must_use]
    pub fn dequantize(&self, q: u8) -> f64 {
        self.scale * (f64::from(q) - f64::from(self.zero_point))
    }

    /// Zero-point-centered code interval: the exact integer range of
    /// `q - zero_point` over all 256 codes. This is the seed interval of
    /// the value-range abstract interpretation (`nc-verify::range`).
    #[must_use]
    pub fn centered_bounds(&self) -> (i64, i64) {
        (
            -i64::from(self.zero_point),
            255 - i64::from(self.zero_point),
        )
    }
}

impl Default for ActQuant {
    /// Unit scale, zero offset — raw byte semantics.
    fn default() -> Self {
        ActQuant {
            scale: 1.0,
            zero_point: 0,
        }
    }
}

/// Affine quantization parameters of a layer's weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightQuant {
    /// Real value of one quantization step.
    pub scale: f64,
    /// The `u8` code representing real zero.
    pub zero_point: i32,
}

impl WeightQuant {
    /// Parameters covering the real weight range `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or the values are not finite.
    #[must_use]
    pub fn from_range(min: f64, max: f64) -> Self {
        let a = ActQuant::from_range(min, max);
        WeightQuant {
            scale: a.scale,
            zero_point: a.zero_point,
        }
    }

    /// Quantizes a real weight (saturating).
    #[must_use]
    pub fn quantize(&self, real: f64) -> u8 {
        ((real / self.scale).round() + f64::from(self.zero_point)).clamp(0.0, 255.0) as u8
    }

    /// Zero-point-centered code interval of `q - zero_point` over all 256
    /// weight codes (see [`ActQuant::centered_bounds`]).
    #[must_use]
    pub fn centered_bounds(&self) -> (i64, i64) {
        (
            -i64::from(self.zero_point),
            255 - i64::from(self.zero_point),
        )
    }
}

impl Default for WeightQuant {
    fn default() -> Self {
        WeightQuant {
            scale: 1.0,
            zero_point: 0,
        }
    }
}

/// Largest multiplier the requantization pipeline may use; it must fit the
/// in-cache scalar multiplier (16 bits).
pub const MAX_MULTIPLIER: u32 = u16::MAX as u32;

/// Largest right shift of the requantization pipeline.
pub const MAX_SHIFT: u32 = 24;

/// The integer requantization of Section IV-D: maps a layer's accumulator
/// range onto `u8` using a subtract / multiply / shift / clamp pipeline that
/// the cache executes with bit-serial scalar ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requantizer {
    /// Accumulator value mapped to output code 0 (subtracted first).
    pub acc_min: i64,
    /// Scalar multiplier (`<= MAX_MULTIPLIER`, computed by the CPU).
    pub multiplier: u32,
    /// Arithmetic right shift applied after the multiply.
    pub shift: u32,
}

impl Requantizer {
    /// Derives the multiplier and shift for accumulators in
    /// `[acc_min, acc_max]`, deterministically: the largest `shift <=
    /// MAX_SHIFT` whose multiplier `ceil(255 << shift / range)` fits
    /// [`MAX_MULTIPLIER`]. The ceiling guarantees `acc_max` maps to code
    /// 255; the saturating clamp in [`Requantizer::apply`] absorbs the
    /// (at most one-code) overshoot near the top of the range.
    ///
    /// # Panics
    ///
    /// Panics if `acc_min > acc_max`.
    #[must_use]
    pub fn from_range(acc_min: i64, acc_max: i64) -> Self {
        assert!(acc_min <= acc_max, "inverted accumulator range");
        let range = (acc_max - acc_min).max(1) as u128;
        let mut shift = MAX_SHIFT;
        let mut multiplier = (255u128 << shift).div_ceil(range);
        while multiplier > u128::from(MAX_MULTIPLIER) && shift > 0 {
            shift -= 1;
            multiplier = (255u128 << shift).div_ceil(range);
        }
        Requantizer {
            acc_min,
            multiplier: multiplier.min(u128::from(MAX_MULTIPLIER)) as u32,
            shift,
        }
    }

    /// Applies the pipeline to one accumulator value. This function *is* the
    /// specification: the in-cache executor reproduces it with `add_scalar`
    /// / `relu` / `mul_scalar` / row-slice shift / `clamp_max_scalar`.
    #[must_use]
    pub fn apply(&self, acc: i64) -> u8 {
        let d = (acc - self.acc_min).max(0) as u128;
        let q = (d * u128::from(self.multiplier)) >> self.shift;
        q.min(255) as u8
    }

    /// The accumulator step one output code represents
    /// (`~range/255`, used to derive the next layer's activation scale).
    #[must_use]
    pub fn acc_per_code(&self) -> f64 {
        f64::from(self.multiplier).recip() * (1u64 << self.shift) as f64
    }
}

impl fmt::Display for Requantizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(acc - {}) * {} >> {}",
            self.acc_min, self.multiplier, self.shift
        )
    }
}

/// Integer re-quantization of an already-quantized `u8` tensor from one
/// affine domain to another (needed when a raw max-pool branch is
/// concatenated with re-quantized convolution branches in Mixed 6a/7a).
///
/// `q_out = clamp((q_in * m + c) >> sh)` with deterministic constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeRequant {
    /// Multiplier applied to the input code.
    pub m: i64,
    /// Additive constant (already scaled by `1 << sh`).
    pub c: i64,
    /// Right shift.
    pub sh: u32,
}

impl CodeRequant {
    /// Builds the mapping taking codes under `from` to codes under `to`
    /// (`real` value preserved up to rounding).
    #[must_use]
    pub fn between(from: ActQuant, to: ActQuant) -> Self {
        const SH: u32 = 16;
        let ratio = from.scale / to.scale;
        let m = (ratio * f64::from(1u32 << SH)).round() as i64;
        let c = ((f64::from(to.zero_point) - ratio * f64::from(from.zero_point))
            * f64::from(1u32 << SH))
        .round() as i64
            + (1 << (SH - 1)); // rounding bias
        CodeRequant { m, c, sh: SH }
    }

    /// Identity mapping (used when the domains already agree).
    #[must_use]
    pub fn identity() -> Self {
        CodeRequant { m: 1, c: 0, sh: 0 }
    }

    /// Applies the mapping to one code.
    #[must_use]
    pub fn apply(&self, q: u8) -> u8 {
        ((i64::from(q) * self.m + self.c) >> self.sh).clamp(0, 255) as u8
    }
}

/// Requantization plan of a standalone convolution layer: maps the measured
/// accumulator range to output codes and derives the next layer's
/// activation parameters.
///
/// `acc_scale` is `s_w * s_a`, the real value of one accumulator unit.
/// This function is the *single* source of the constants for both the
/// reference and the in-cache executor (bit-exactness by construction).
#[must_use]
pub fn conv_requant_plan(acc_min: i64, acc_max: i64, acc_scale: f64) -> (Requantizer, ActQuant) {
    let req = Requantizer::from_range(acc_min, acc_max);
    let range = (acc_max - acc_min).max(1) as f64;
    let scale = (acc_scale * range / 255.0).max(f64::MIN_POSITIVE);
    let zero_point = (-(acc_min as f64) * 255.0 / range)
        .round()
        .clamp(0.0, 255.0) as i32;
    (req, ActQuant { scale, zero_point })
}

/// Requantizer for one branch of a mixed block whose outputs must share the
/// block-wide real range `[r_min, r_max]` (Section IV computes min/max once
/// per layer, so concatenated branches share output quantization).
#[must_use]
pub fn branch_requantizer(r_min: f64, r_max: f64, acc_scale: f64) -> Requantizer {
    let amin = (r_min / acc_scale).floor() as i64;
    let amax = (r_max / acc_scale).ceil() as i64;
    Requantizer::from_range(amin, amax.max(amin))
}

/// Adds two accumulator terms, debug-asserting that the sum stays inside
/// `i64` (the widened reference executor must never silently wrap; release
/// builds keep the plain wrapping add for speed).
#[inline]
#[must_use]
pub fn acc_add(a: i64, b: i64) -> i64 {
    debug_assert!(
        a.checked_add(b).is_some(),
        "accumulator add {a} + {b} wraps i64"
    );
    a.wrapping_add(b)
}

/// Multiplies two accumulator terms, debug-asserting the product stays
/// inside `i64` (see [`acc_add`]).
#[inline]
#[must_use]
pub fn acc_mul(a: i64, b: i64) -> i64 {
    debug_assert!(
        a.checked_mul(b).is_some(),
        "accumulator multiply {a} * {b} wraps i64"
    );
    a.wrapping_mul(b)
}

/// Worst-case accumulator magnitude `n_taps * w_mag * a_mag + bias_mag`,
/// computed with checked arithmetic: `None` means the bound itself does not
/// fit `i64`, so the reference executor could wrap and no static interval
/// can certify the layer.
#[must_use]
pub fn checked_acc_bound(n_taps: i64, w_mag: i64, a_mag: i64, bias_mag: i64) -> Option<i64> {
    n_taps
        .checked_mul(w_mag)?
        .checked_mul(a_mag)?
        .checked_add(bias_mag)
}

/// Shared activation parameters of a mixed block's concatenated output.
#[must_use]
pub fn shared_out_quant(r_min: f64, r_max: f64) -> ActQuant {
    let scale = ((r_max - r_min) / 255.0).max(f64::MIN_POSITIVE);
    let zero_point = (-r_min / scale).round().clamp(0.0, 255.0) as i32;
    ActQuant { scale, zero_point }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn act_quant_roundtrip() {
        let q = ActQuant::from_range(-2.0, 6.0);
        assert_eq!(q.quantize(0.0), q.zero_point as u8);
        let code = q.quantize(3.0);
        assert!((q.dequantize(code) - 3.0).abs() < q.scale);
        // Saturation.
        assert_eq!(q.quantize(100.0), 255);
        assert_eq!(q.quantize(-100.0), 0);
    }

    #[test]
    fn act_quant_includes_zero() {
        let q = ActQuant::from_range(2.0, 6.0);
        assert_eq!(q.zero_point, 0, "range widened to include zero");
        let q = ActQuant::from_range(-6.0, -2.0);
        assert_eq!(q.zero_point, 255);
    }

    #[test]
    fn requantizer_maps_range_to_codes() {
        let r = Requantizer::from_range(-1000, 9000);
        assert_eq!(r.apply(-1000), 0);
        assert_eq!(r.apply(-5000), 0, "below min clamps (ReLU in-cache)");
        assert_eq!(r.apply(9000), 255);
        let mid = r.apply(4000);
        assert!((120..=130).contains(&mid), "midpoint ~127, got {mid}");
        // The clamp keeps every in-range value at the top code or below.
        for acc in (-1000..=9000).step_by(7) {
            let q = r.apply(acc);
            assert!(q == 255 || i64::from(q) <= (acc + 1000) / 39 + 1);
        }
    }

    #[test]
    fn requantizer_multiplier_fits_in_cache_constant() {
        for (lo, hi) in [
            (0, 1),
            (0, 255),
            (-7, 100_000),
            (-2_000_000_000, 2_000_000_000),
        ] {
            let r = Requantizer::from_range(lo, hi);
            assert!(r.multiplier <= MAX_MULTIPLIER);
            assert!(r.shift <= MAX_SHIFT);
            assert!(r.multiplier > 0);
        }
    }

    #[test]
    fn requantizer_is_monotone() {
        let r = Requantizer::from_range(-512, 131_072);
        let mut prev = 0u8;
        for acc in (-512..=131_072).step_by(97) {
            let q = r.apply(acc);
            assert!(q >= prev);
            prev = q;
        }
        assert_eq!(r.apply(131_072), 255, "the range max reaches the top code");
    }

    #[test]
    fn degenerate_range_is_total() {
        let r = Requantizer::from_range(42, 42);
        assert_eq!(r.apply(42), 0);
    }

    #[test]
    fn centered_bounds_cover_all_codes() {
        let a = ActQuant {
            scale: 0.5,
            zero_point: 100,
        };
        assert_eq!(a.centered_bounds(), (-100, 155));
        let w = WeightQuant {
            scale: 1.0,
            zero_point: 0,
        };
        assert_eq!(w.centered_bounds(), (0, 255));
    }

    #[test]
    fn checked_acc_bound_detects_i64_overflow() {
        assert_eq!(checked_acc_bound(9, 255, 255, 10), Some(9 * 255 * 255 + 10));
        assert_eq!(checked_acc_bound(i64::MAX, 2, 1, 0), None);
        assert_eq!(checked_acc_bound(1, 1, 1, i64::MAX), None);
    }

    #[test]
    fn acc_helpers_compute_exactly() {
        assert_eq!(acc_add(40, 2), 42);
        assert_eq!(acc_mul(-6, 7), -42);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "accumulator add")]
    fn acc_add_asserts_on_i64_wrap() {
        let _ = acc_add(i64::MAX, 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "accumulator multiply")]
    fn acc_mul_asserts_on_i64_wrap() {
        let _ = acc_mul(i64::MAX, 2);
    }

    #[test]
    fn code_requant_preserves_real_values() {
        let from = ActQuant::from_range(-1.0, 3.0);
        let to = ActQuant::from_range(-2.0, 6.0);
        let map = CodeRequant::between(from, to);
        for q in 0..=255u8 {
            let real = from.dequantize(q);
            let q2 = map.apply(q);
            let real2 = to.dequantize(q2);
            assert!((real - real2).abs() <= to.scale, "q={q}: {real} vs {real2}");
        }
        assert_eq!(CodeRequant::identity().apply(77), 77);
    }
}
