//! The golden model: a plain-Rust integer executor for quantized inference.
//!
//! The paper verifies its cycle-accurate simulator "by running data traces
//! on it and matching the results with traces obtained from instrumenting
//! the TensorFlow model" (Section V). We have no TensorFlow; this executor
//! plays that role (DESIGN.md §4): it implements the *exact* integer
//! arithmetic of [`crate::quant`], and the in-cache functional executor must
//! reproduce its outputs bit-for-bit.

use crate::quant::{
    acc_add, acc_mul, branch_requantizer, conv_requant_plan, shared_out_quant, CodeRequant,
};
use crate::{
    pad_before, AccTensor, ActQuant, Branch, BranchOp, Conv2d, Layer, MixedBlock, Model, Pool2d,
    PoolKind, QTensor, Requantizer, Shape,
};

/// Trimmed operand widths of one convolution sub-layer, mirroring the
/// in-cache allocations the bit-budget advisor may shrink. A trimmed
/// reference run masks every running value to these widths exactly where
/// the hardware word-line regions would truncate, so an unsound trim wraps
/// and corrupts the output — the advisor's bit-exactness gate compares
/// [`run_model_trimmed`] against [`run_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccTrim {
    /// Taps accumulated per lane partial (the mapping's effective window).
    pub chunk: usize,
    /// Per-lane partial-sum width in bits (default `PARTIAL_BITS` = 24).
    pub partial_bits: u32,
    /// Reduction-tree / running-sum width in bits (default `REDUCE_BITS`
    /// = 32), shared by the `S1` and `S2` trees.
    pub reduce_bits: u32,
    /// Live multiplicand (weight) width in bits (default `DATA_BITS` = 8).
    pub mult_bits: u32,
}

/// Per-sublayer trim lookup threaded through a trimmed reference run.
type Trims<'a> = Option<&'a dyn Fn(&str) -> Option<AccTrim>>;

/// Requantization decisions recorded for one convolution sub-layer.
///
/// The Neural Cache functional executor recomputes the same accumulator
/// min/max in-cache and must arrive at identical constants; integration
/// tests compare these records.
#[derive(Debug, Clone, PartialEq)]
pub struct SublayerRecord {
    /// Sub-layer name.
    pub name: String,
    /// Measured accumulator minimum (after fused `ReLU`, when present).
    pub acc_min: i64,
    /// Measured accumulator maximum.
    pub acc_max: i64,
    /// Requantization pipeline applied.
    pub requant: Requantizer,
    /// Activation parameters of the produced tensor.
    pub out_quant: ActQuant,
}

/// Execution record of one top-level layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRecord {
    /// Layer name.
    pub name: String,
    /// Records of the convolution sub-layers executed inside this layer.
    pub sublayers: Vec<SublayerRecord>,
    /// The layer's output tensor.
    pub output: QTensor,
}

/// Full inference result: final output plus per-layer records.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Final output tensor (Inception v3: 1x1x1001 logits codes).
    pub output: QTensor,
    /// Per-layer execution records, in order.
    pub layers: Vec<LayerRecord>,
}

impl InferenceResult {
    /// Index of the maximum output code along channels of the (1x1xC)
    /// output — the predicted class.
    ///
    /// # Panics
    ///
    /// Panics if the output is not 1x1 spatial.
    #[must_use]
    pub fn argmax(&self) -> usize {
        let s = self.output.shape();
        assert_eq!((s.h, s.w), (1, 1), "argmax expects a 1x1 spatial output");
        (0..s.c)
            .max_by_key(|&c| self.output.get(0, 0, c))
            .expect("non-empty output")
    }
}

/// Runs the whole model on `input`, recording per-layer requantization
/// decisions.
///
/// # Panics
///
/// Panics if the input shape mismatches the model or any convolution
/// sub-layer lacks weights.
#[must_use]
pub fn run_model(model: &Model, input: &QTensor) -> InferenceResult {
    run_model_inner(model, input, None)
}

/// Runs the whole model with per-sublayer trimmed operand widths (see
/// [`AccTrim`]). Sound trims — widths at or above the proven value ranges —
/// are bit-identical to [`run_model`]; under-sized trims wrap exactly where
/// the hardware would.
///
/// # Panics
///
/// Panics if the input shape mismatches the model or any convolution
/// sub-layer lacks weights.
#[must_use]
pub fn run_model_trimmed(
    model: &Model,
    input: &QTensor,
    trims: &dyn Fn(&str) -> Option<AccTrim>,
) -> InferenceResult {
    run_model_inner(model, input, Some(trims))
}

fn run_model_inner(model: &Model, input: &QTensor, trims: Trims<'_>) -> InferenceResult {
    assert_eq!(
        input.shape(),
        model.input_shape,
        "input shape does not match model"
    );
    let mut cur = input.clone();
    let mut layers = Vec::with_capacity(model.layers.len());
    for layer in &model.layers {
        let record = run_layer_inner(layer, &cur, trims);
        cur = record.output.clone();
        layers.push(record);
    }
    InferenceResult {
        output: cur,
        layers,
    }
}

/// Runs one top-level layer.
#[must_use]
pub fn run_layer(layer: &Layer, input: &QTensor) -> LayerRecord {
    run_layer_inner(layer, input, None)
}

fn run_layer_inner(layer: &Layer, input: &QTensor, trims: Trims<'_>) -> LayerRecord {
    match layer {
        Layer::Conv(conv) => {
            let (out, rec) = run_conv_inner(conv, input, trims);
            LayerRecord {
                name: conv.spec.name.clone(),
                sublayers: vec![rec],
                output: out,
            }
        }
        Layer::Pool(pool) => LayerRecord {
            name: pool.name.clone(),
            sublayers: Vec::new(),
            output: run_pool(pool, input),
        },
        Layer::Mixed(block) => run_mixed_inner(block, input, trims),
    }
}

/// Computes the zero-point-corrected integer accumulators of a convolution
/// (the quantity Neural Cache materializes per bit line before reduction).
///
/// # Panics
///
/// Panics if the layer is shape-only.
#[must_use]
pub fn conv_accumulate(conv: &Conv2d, input: &QTensor) -> AccTensor {
    let spec = &conv.spec;
    let in_shape = input.shape();
    let out_shape = spec.out_shape(in_shape);
    let zp_a = i64::from(input.params().zero_point);
    let zp_w = i64::from(conv.w_quant.zero_point);
    let n = spec.macs_per_output() as i64;
    let pad_y = pad_before(in_shape.h, spec.r, spec.stride, spec.padding) as isize;
    let pad_x = pad_before(in_shape.w, spec.s, spec.stride, spec.padding) as isize;

    let w1: Vec<i64> = (0..spec.m).map(|m| conv.filter_code_sum(m)).collect();
    let mut acc = AccTensor::zeros(out_shape);
    let mut window = vec![0u8; spec.r * spec.s * spec.c];

    for ey in 0..out_shape.h {
        for ex in 0..out_shape.w {
            // Gather the (padded) input window once; padding holds zp_a so
            // its zero-point-corrected contribution is exactly zero.
            let oy = (ey * spec.stride) as isize - pad_y;
            let ox = (ex * spec.stride) as isize - pad_x;
            let mut idx = 0;
            let mut s2 = 0i64;
            for r in 0..spec.r {
                for s in 0..spec.s {
                    for c in 0..spec.c {
                        let q = input.get_padded(oy + r as isize, ox + s as isize, c);
                        window[idx] = q;
                        s2 = acc_add(s2, i64::from(q));
                        idx += 1;
                    }
                }
            }
            let weights = conv
                .weights
                .as_ref()
                .expect("functional conv needs weights");
            let per_filter = spec.r * spec.s * spec.c;
            for m in 0..spec.m {
                let wslice = &weights[m * per_filter..(m + 1) * per_filter];
                let mut s1 = 0i64;
                for (wq, aq) in wslice.iter().zip(window.iter()) {
                    s1 = acc_add(s1, i64::from(*wq) * i64::from(*aq));
                }
                let value = acc_add(
                    acc_add(acc_add(s1, -acc_mul(zp_w, s2)), -acc_mul(zp_a, w1[m])),
                    acc_add(acc_mul(acc_mul(n, zp_w), zp_a), conv.bias_of(m)),
                );
                acc.set(ey, ex, m, value);
            }
        }
    }
    acc
}

/// [`conv_accumulate`] with the in-cache operand widths masked to `trim`:
/// per-lane partials of `chunk` taps wrap at `partial_bits`, the `S1`/`S2`
/// reduction sums wrap at `reduce_bits`, weight codes truncate to
/// `mult_bits`, and the assembled accumulator wraps in the 40-bit
/// two's-complement region. Sound widths reproduce [`conv_accumulate`]
/// exactly.
///
/// # Panics
///
/// Panics if the layer is shape-only.
#[must_use]
pub fn conv_accumulate_trimmed(conv: &Conv2d, input: &QTensor, trim: AccTrim) -> AccTensor {
    const ACC_BITS: u32 = 40;
    let spec = &conv.spec;
    let in_shape = input.shape();
    let out_shape = spec.out_shape(in_shape);
    let zp_a = i64::from(input.params().zero_point);
    let zp_w = i64::from(conv.w_quant.zero_point);
    let n = spec.macs_per_output() as i64;
    let pad_y = pad_before(in_shape.h, spec.r, spec.stride, spec.padding) as isize;
    let pad_x = pad_before(in_shape.w, spec.s, spec.stride, spec.padding) as isize;

    let chunk = trim.chunk.max(1);
    let pmask = width_mask(trim.partial_bits);
    let rmask = width_mask(trim.reduce_bits);
    let wmask = width_mask(trim.mult_bits);
    // The dedicated S2 running-sum region is 2 bytes wide (Figure 10a).
    let s2mask = width_mask(16);

    let w1: Vec<i64> = (0..spec.m).map(|m| conv.filter_code_sum(m)).collect();
    let mut acc = AccTensor::zeros(out_shape);
    let mut window = vec![0u8; spec.r * spec.s * spec.c];

    for ey in 0..out_shape.h {
        for ex in 0..out_shape.w {
            let oy = (ey * spec.stride) as isize - pad_y;
            let ox = (ex * spec.stride) as isize - pad_x;
            let mut idx = 0;
            for r in 0..spec.r {
                for s in 0..spec.s {
                    for c in 0..spec.c {
                        window[idx] = input.get_padded(oy + r as isize, ox + s as isize, c);
                        idx += 1;
                    }
                }
            }
            // S2 tree: per-lane window sums wrap in the 16-bit S2 region,
            // the reduction wraps at the reduce width.
            let mut s2 = 0u64;
            for lane in window.chunks(chunk) {
                let mut part = 0u64;
                for &a in lane {
                    part = (part + u64::from(a)) & s2mask;
                }
                s2 = (s2 + part) & rmask;
            }
            let weights = conv
                .weights
                .as_ref()
                .expect("functional conv needs weights");
            let per_filter = spec.r * spec.s * spec.c;
            for m in 0..spec.m {
                let wslice = &weights[m * per_filter..(m + 1) * per_filter];
                // S1 tree: truncated weight products accumulate per lane in
                // the partial width, then reduce at the reduce width.
                let mut s1 = 0u64;
                for (wlane, alane) in wslice.chunks(chunk).zip(window.chunks(chunk)) {
                    let mut part = 0u64;
                    for (&w, &a) in wlane.iter().zip(alane) {
                        part = (part + (u64::from(w) & wmask) * u64::from(a)) & pmask;
                    }
                    s1 = (s1 + part) & rmask;
                }
                let c0 = -zp_a * w1[m] + n * zp_w * zp_a + conv.bias_of(m);
                let raw = s1 as i64 - zp_w * (s2 as i64) + c0;
                acc.set(ey, ex, m, wrap_to_bits(raw, ACC_BITS));
            }
        }
    }
    acc
}

/// All-ones mask of the low `bits` bits (full width at 64 and above).
fn width_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Wraps a value into `bits`-bit two's complement (the word-line region
/// truncation of the accumulator assembly pass).
fn wrap_to_bits(v: i64, bits: u32) -> i64 {
    let shift = 64 - bits;
    (v << shift) >> shift
}

/// Runs one standalone convolution sub-layer: accumulate, fused `ReLU`,
/// dynamic ranging, requantize.
#[must_use]
pub fn run_conv(conv: &Conv2d, input: &QTensor) -> (QTensor, SublayerRecord) {
    run_conv_inner(conv, input, None)
}

/// Accumulates with the sub-layer's trim applied when one is configured.
fn accumulate_inner(conv: &Conv2d, input: &QTensor, trims: Trims<'_>) -> AccTensor {
    match trims.and_then(|t| t(&conv.spec.name)) {
        Some(trim) => conv_accumulate_trimmed(conv, input, trim),
        None => conv_accumulate(conv, input),
    }
}

fn run_conv_inner(conv: &Conv2d, input: &QTensor, trims: Trims<'_>) -> (QTensor, SublayerRecord) {
    let mut acc = accumulate_inner(conv, input, trims);
    if conv.spec.relu {
        acc.relu();
    }
    let (acc_min, acc_max) = acc.min_max();
    let acc_scale = conv.w_quant.scale * input.params().scale;
    let (requant, out_quant) = conv_requant_plan(acc_min, acc_max, acc_scale);
    let out = requantize_acc(&acc, requant, out_quant);
    (
        out,
        SublayerRecord {
            name: conv.spec.name.clone(),
            acc_min,
            acc_max,
            requant,
            out_quant,
        },
    )
}

fn requantize_acc(acc: &AccTensor, requant: Requantizer, out_quant: ActQuant) -> QTensor {
    let s = acc.shape();
    QTensor::from_fn(s, out_quant, |y, x, c| requant.apply(acc.get(y, x, c)))
}

/// Runs a pooling layer (max or average) on quantized codes; quantization
/// parameters pass through unchanged.
#[must_use]
pub fn run_pool(pool: &Pool2d, input: &QTensor) -> QTensor {
    let in_shape = input.shape();
    let out_shape = pool.out_shape(in_shape);
    let pad_y = pad_before(in_shape.h, pool.k, pool.stride, pool.padding) as isize;
    let pad_x = pad_before(in_shape.w, pool.k, pool.stride, pool.padding) as isize;
    QTensor::from_fn(out_shape, input.params(), |ey, ex, c| {
        let oy = (ey * pool.stride) as isize - pad_y;
        let ox = (ex * pool.stride) as isize - pad_x;
        match pool.kind {
            PoolKind::Max => {
                let mut best = 0u8;
                for r in 0..pool.k {
                    for s in 0..pool.k {
                        let (y, x) = (oy + r as isize, ox + s as isize);
                        if y >= 0
                            && x >= 0
                            && (y as usize) < in_shape.h
                            && (x as usize) < in_shape.w
                        {
                            best = best.max(input.get(y as usize, x as usize, c));
                        }
                    }
                }
                best
            }
            PoolKind::Avg => {
                // Average over *valid* cells only (TensorFlow semantics);
                // in-cache this is the lane-wise division with a per-lane
                // divisor.
                let mut sum = 0u64;
                let mut count = 0u64;
                for r in 0..pool.k {
                    for s in 0..pool.k {
                        let (y, x) = (oy + r as isize, ox + s as isize);
                        if y >= 0
                            && x >= 0
                            && (y as usize) < in_shape.h
                            && (x as usize) < in_shape.w
                        {
                            sum += u64::from(input.get(y as usize, x as usize, c));
                            count += 1;
                        }
                    }
                }
                (sum / count.max(1)) as u8
            }
        }
    })
}

/// Runs an Inception mixed block: branches execute serially; intermediate
/// tensors requantize with their own dynamic range; the branch outputs
/// share the block-wide real range and concatenate along channels
/// (Section IV-D: min/max "of the entire cache" once per layer).
#[must_use]
pub fn run_mixed(block: &MixedBlock, input: &QTensor) -> LayerRecord {
    run_mixed_inner(block, input, None)
}

fn run_mixed_inner(block: &MixedBlock, input: &QTensor, trims: Trims<'_>) -> LayerRecord {
    let mut sublayers = Vec::new();
    let mut pending = Vec::with_capacity(block.branches.len());

    for branch in &block.branches {
        let (ps, mut recs) = run_branch(branch, input, trims);
        sublayers.append(&mut recs);
        pending.extend(ps);
    }

    // Block-wide real output range.
    let mut r_min = f64::INFINITY;
    let mut r_max = f64::NEG_INFINITY;
    for p in &pending {
        match p {
            Pending::Acc(acc, scale, _) => {
                let (lo, hi) = acc.min_max();
                r_min = r_min.min(lo as f64 * scale);
                r_max = r_max.max(hi as f64 * scale);
            }
            Pending::Codes(t) => {
                let (mut lo, mut hi) = (u8::MAX, u8::MIN);
                for &q in t.data() {
                    lo = lo.min(q);
                    hi = hi.max(q);
                }
                r_min = r_min.min(t.params().dequantize(lo));
                r_max = r_max.max(t.params().dequantize(hi));
            }
        }
    }
    let out_quant = shared_out_quant(r_min, r_max);

    // Requantize every branch into the shared domain and concatenate.
    let mut parts: Vec<QTensor> = Vec::with_capacity(pending.len());
    for p in pending {
        match p {
            Pending::Acc(acc, scale, name) => {
                let requant = branch_requantizer(r_min, r_max, scale);
                let (acc_min, acc_max) = acc.min_max();
                parts.push(requantize_acc(&acc, requant, out_quant));
                // Update the record of this final sub-layer with the shared
                // requant actually applied.
                if let Some(rec) = sublayers.iter_mut().rev().find(|r| r.name == name) {
                    rec.requant = requant;
                    rec.out_quant = out_quant;
                    rec.acc_min = acc_min;
                    rec.acc_max = acc_max;
                }
            }
            Pending::Codes(t) => {
                let map = CodeRequant::between(t.params(), out_quant);
                let mut re = t.clone();
                for (i, &q) in t.data().iter().enumerate() {
                    let (y, x, c) = unflatten(t.shape(), i);
                    re.set(y, x, c, map.apply(q));
                }
                re.set_params(out_quant);
                parts.push(re);
            }
        }
    }

    let concat = concat_channels(&parts, out_quant);
    LayerRecord {
        name: block.name.clone(),
        sublayers,
        output: concat,
    }
}

fn run_branch(
    branch: &Branch,
    input: &QTensor,
    trims: Trims<'_>,
) -> (Vec<Pending>, Vec<SublayerRecord>) {
    let mut records = Vec::new();
    let mut cur = input.clone();
    let last = branch.ops.len() - 1;
    for (i, op) in branch.ops.iter().enumerate() {
        match op {
            BranchOp::Pool(p) => {
                let out = run_pool(p, &cur);
                if i == last {
                    return (vec![Pending::Codes(out)], records);
                }
                cur = out;
            }
            BranchOp::Conv(c) => {
                if i == last {
                    let (p, rec) = pend_conv(c, &cur, trims);
                    records.push(rec);
                    return (vec![p], records);
                }
                let (out, rec) = run_conv_inner(c, &cur, trims);
                records.push(rec);
                cur = out;
            }
            BranchOp::Split(convs) => {
                // Terminal fan-out: every split conv consumes `cur` and
                // defers requantization to the block range.
                let mut pendings = Vec::with_capacity(convs.len());
                for c in convs {
                    let (p, rec) = pend_conv(c, &cur, trims);
                    records.push(rec);
                    pendings.push(p);
                }
                return (pendings, records);
            }
        }
    }
    unreachable!("branch has at least one op");
}

/// Runs a conv whose requantization is deferred to the block-shared range.
fn pend_conv(c: &Conv2d, input: &QTensor, trims: Trims<'_>) -> (Pending, SublayerRecord) {
    let mut acc = accumulate_inner(c, input, trims);
    if c.spec.relu {
        acc.relu();
    }
    let scale = c.w_quant.scale * input.params().scale;
    let (acc_min, acc_max) = acc.min_max();
    // Placeholder record; run_mixed overwrites requant/out_quant with the
    // shared-range version once the block range is known.
    let (requant, out_quant) = conv_requant_plan(acc_min, acc_max, scale);
    let rec = SublayerRecord {
        name: c.spec.name.clone(),
        acc_min,
        acc_max,
        requant,
        out_quant,
    };
    (Pending::Acc(acc, scale, c.spec.name.clone()), rec)
}

/// A branch's final output awaiting the block-wide shared range: either raw
/// accumulators (conv-final branch, with their real scale and name) or
/// already-coded values (pool-final branch).
enum Pending {
    Acc(AccTensor, f64, String),
    Codes(QTensor),
}

fn unflatten(shape: Shape, idx: usize) -> (usize, usize, usize) {
    let c = idx % shape.c;
    let x = (idx / shape.c) % shape.w;
    let y = idx / (shape.c * shape.w);
    (y, x, c)
}

fn concat_channels(parts: &[QTensor], params: ActQuant) -> QTensor {
    let (h, w) = (parts[0].shape().h, parts[0].shape().w);
    let total_c: usize = parts.iter().map(|p| p.shape().c).sum();
    QTensor::from_fn(Shape::new(h, w, total_c), params, |y, x, c| {
        let mut offset = 0;
        for p in parts {
            let pc = p.shape().c;
            if c < offset + pc {
                return p.get(y, x, c - offset);
            }
            offset += pc;
        }
        unreachable!("channel {c} out of range");
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConvSpec, Padding, WeightQuant};

    fn identity_quant() -> ActQuant {
        ActQuant {
            scale: 1.0,
            zero_point: 0,
        }
    }

    /// 1x1 conv with identity-ish quantization for hand-checkable numbers.
    fn tiny_conv(c: usize, m: usize, weights: Vec<u8>, relu: bool) -> Conv2d {
        Conv2d::with_weights(
            ConvSpec {
                name: "tiny".into(),
                r: 1,
                s: 1,
                c,
                m,
                stride: 1,
                padding: Padding::Valid,
                relu,
            },
            weights,
            WeightQuant {
                scale: 1.0,
                zero_point: 0,
            },
            vec![],
        )
    }

    #[test]
    fn accumulate_matches_hand_computation() {
        // input 1x1x3 = [2, 3, 5]; weights for 2 filters: [1,2,3], [10,0,1]
        let input = QTensor::from_vec(Shape::new(1, 1, 3), identity_quant(), vec![2, 3, 5]);
        let conv = tiny_conv(3, 2, vec![1, 2, 3, 10, 0, 1], false);
        let acc = conv_accumulate(&conv, &input);
        assert_eq!(acc.get(0, 0, 0), 2 + 6 + 15);
        assert_eq!(acc.get(0, 0, 1), 20 + 5);
    }

    #[test]
    fn zero_points_cancel_for_zero_real_inputs() {
        // With zp_a = 100, code 100 means real zero; any filter must then
        // produce accumulator zero.
        let params = ActQuant {
            scale: 0.5,
            zero_point: 100,
        };
        let input = QTensor::from_vec(Shape::new(1, 1, 2), params, vec![100, 100]);
        let mut conv = tiny_conv(2, 1, vec![7, 200], false);
        conv.w_quant = WeightQuant {
            scale: 0.25,
            zero_point: 50,
        };
        let acc = conv_accumulate(&conv, &input);
        assert_eq!(acc.get(0, 0, 0), 0);
    }

    #[test]
    fn padding_contributes_exactly_zero() {
        let params = ActQuant {
            scale: 1.0,
            zero_point: 9,
        };
        // 1x1 input, 3x3 SAME conv: 8 of 9 taps are padding.
        let input = QTensor::from_vec(Shape::new(1, 1, 1), params, vec![19]);
        let conv = Conv2d::with_weights(
            ConvSpec {
                name: "pad".into(),
                r: 3,
                s: 3,
                c: 1,
                m: 1,
                stride: 1,
                padding: Padding::Same,
                relu: false,
            },
            vec![5; 9],
            WeightQuant {
                scale: 1.0,
                zero_point: 2,
            },
            vec![],
        );
        let acc = conv_accumulate(&conv, &input);
        // Only the center tap matters: (5-2)*(19-9) = 30.
        assert_eq!(acc.get(0, 0, 0), 30);
    }

    #[test]
    fn relu_and_requant_clamp_negative_accs() {
        let input = QTensor::from_vec(Shape::new(1, 2, 1), identity_quant(), vec![0, 10]);
        // weight code 0 with zp 5 => real weight -5: acc = -5*q.
        let mut conv = tiny_conv(1, 1, vec![0], true);
        conv.w_quant = WeightQuant {
            scale: 1.0,
            zero_point: 5,
        };
        let (out, rec) = run_conv(&conv, &input);
        assert_eq!(rec.acc_min, 0, "ReLU clamps before ranging");
        assert_eq!(rec.acc_max, 0, "all accs negative -> all zero");
        assert_eq!(out.get(0, 0, 0), 0);
        assert_eq!(out.get(0, 1, 0), 0);
    }

    #[test]
    fn max_pool_matches_scalar() {
        let input = QTensor::from_vec(Shape::new(2, 2, 1), identity_quant(), vec![3, 9, 4, 7]);
        let pool = Pool2d {
            name: "p".into(),
            kind: PoolKind::Max,
            k: 2,
            stride: 2,
            padding: Padding::Valid,
        };
        let out = run_pool(&pool, &input);
        assert_eq!(out.shape(), Shape::new(1, 1, 1));
        assert_eq!(out.get(0, 0, 0), 9);
    }

    #[test]
    fn avg_pool_excludes_padding() {
        let input = QTensor::from_vec(Shape::new(2, 2, 1), identity_quant(), vec![4, 8, 12, 16]);
        let pool = Pool2d {
            name: "p".into(),
            kind: PoolKind::Avg,
            k: 3,
            stride: 1,
            padding: Padding::Same,
        };
        let out = run_pool(&pool, &input);
        // Center of a 2x2 with 3x3 SAME: all positions see all 4 values
        // (padded cells excluded): floor(40/4) = 10.
        assert_eq!(out.get(0, 0, 0), 10);
    }

    #[test]
    fn requantized_output_spans_code_range() {
        let input = QTensor::from_vec(Shape::new(1, 4, 1), identity_quant(), vec![0, 50, 100, 200]);
        let conv = tiny_conv(1, 1, vec![3], false);
        let (out, rec) = run_conv(&conv, &input);
        assert_eq!(rec.acc_min, 0);
        assert_eq!(rec.acc_max, 600);
        assert_eq!(out.get(0, 0, 0), 0, "min maps to code 0");
        assert_eq!(out.get(0, 3, 0), 255, "max maps to code 255");
        let mid = out.get(0, 2, 0);
        assert!((125..=130).contains(&mid), "mid ~ 127, got {mid}");
    }

    #[test]
    fn mixed_block_concatenates_with_shared_range() {
        // Two 1x1 branches with very different magnitudes; the shared range
        // must be dominated by the large branch.
        let input = QTensor::from_vec(Shape::new(1, 1, 2), identity_quant(), vec![10, 20]);
        let b_small = Branch::new(vec![BranchOp::Conv(tiny_conv(2, 1, vec![1, 0], true))]);
        let b_large = Branch::new(vec![BranchOp::Conv(tiny_conv(2, 1, vec![100, 100], true))]);
        let block = MixedBlock {
            name: "m".into(),
            branches: vec![b_small, b_large],
        };
        let rec = run_mixed(&block, &input);
        assert_eq!(rec.output.shape(), Shape::new(1, 1, 2));
        let small = rec.output.get(0, 0, 0);
        let large = rec.output.get(0, 0, 1);
        assert_eq!(large, 255, "dominant branch hits the top code");
        // Branch values: 10 vs 3000 -> small lands near 10*255/3000.
        assert!(small <= 2, "small branch compressed, got {small}");
        assert_eq!(rec.sublayers.len(), 2);
    }

    #[test]
    fn trimmed_run_with_default_widths_is_bit_identical() {
        use crate::workload::{random_input, tiny_cnn};
        let model = tiny_cnn(7);
        let input = random_input(model.input_shape, model.input_quant, 70);
        let exact = run_model(&model, &input);
        // Default in-cache widths: masking at them must never bite.
        let trims = |_: &str| {
            Some(AccTrim {
                chunk: 9,
                partial_bits: 24,
                reduce_bits: 32,
                mult_bits: 8,
            })
        };
        let trimmed = run_model_trimmed(&model, &input, &trims);
        assert_eq!(trimmed.output.data(), exact.output.data());
        let exact_recs: Vec<&SublayerRecord> =
            exact.layers.iter().flat_map(|l| &l.sublayers).collect();
        let trim_recs: Vec<&SublayerRecord> =
            trimmed.layers.iter().flat_map(|l| &l.sublayers).collect();
        assert_eq!(trim_recs, exact_recs);
    }

    #[test]
    fn undersized_trim_wraps_and_corrupts() {
        use crate::workload::{random_input, tiny_cnn};
        let model = tiny_cnn(7);
        let input = random_input(model.input_shape, model.input_quant, 70);
        let exact = run_model(&model, &input);
        // 6-bit partials wrap on full-range products, so the run must
        // diverge — that divergence is the advisor's safety net.
        let trims = |_: &str| {
            Some(AccTrim {
                chunk: 9,
                partial_bits: 6,
                reduce_bits: 32,
                mult_bits: 8,
            })
        };
        let trimmed = run_model_trimmed(&model, &input, &trims);
        assert_ne!(trimmed.output.data(), exact.output.data());
    }

    #[test]
    fn argmax_picks_largest_channel() {
        let out = QTensor::from_vec(Shape::new(1, 1, 4), identity_quant(), vec![3, 200, 7, 9]);
        let res = InferenceResult {
            output: out,
            layers: vec![],
        };
        assert_eq!(res.argmax(), 1);
    }
}
