//! Tensor shapes and convolution output-size arithmetic.

use std::fmt;

/// Shape of one activation tensor in HWC (height, width, channels) order.
///
/// Batches are handled by the scheduler (Section IV-E), so tensors describe
/// a single image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Height (the paper's `H` for inputs, `E` for outputs).
    pub h: usize,
    /// Width (`W`).
    pub w: usize,
    /// Channels (`C`).
    pub c: usize,
}

impl Shape {
    /// Creates a shape; all dimensions must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(h: usize, w: usize, c: usize) -> Self {
        assert!(h > 0 && w > 0 && c > 0, "shape dimensions must be non-zero");
        Shape { h, w, c }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.h * self.w * self.c
    }

    /// `true` only for the impossible empty shape (kept for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of a `u8` tensor of this shape.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.len()
    }

    /// Row-major HWC linear index of `(y, x, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    #[inline]
    pub fn index(&self, y: usize, x: usize, c: usize) -> usize {
        assert!(
            y < self.h && x < self.w && c < self.c,
            "index out of bounds"
        );
        (y * self.w + x) * self.c + c
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

/// Spatial padding policy, with TensorFlow semantics (the framework the
/// paper benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Padding {
    /// No padding; output dim = `floor((in - k)/stride) + 1`.
    #[default]
    Valid,
    /// Pad so output dim = `ceil(in/stride)`.
    Same,
}

/// Output spatial dimension of a convolution/pooling window.
///
/// # Panics
///
/// Panics if the window does not fit (`Valid` with `k > input`), or stride
/// is zero.
#[must_use]
pub fn conv_out_dim(input: usize, k: usize, stride: usize, padding: Padding) -> usize {
    assert!(stride > 0, "stride must be positive");
    match padding {
        Padding::Valid => {
            assert!(input >= k, "window {k} larger than input {input}");
            (input - k) / stride + 1
        }
        Padding::Same => input.div_ceil(stride),
    }
}

/// Total padding (both sides combined) applied along one dimension.
#[must_use]
pub fn pad_total(input: usize, k: usize, stride: usize, padding: Padding) -> usize {
    match padding {
        Padding::Valid => 0,
        Padding::Same => {
            let out = conv_out_dim(input, k, stride, padding);
            ((out - 1) * stride + k).saturating_sub(input)
        }
    }
}

/// Padding applied before the first element (TensorFlow puts the smaller
/// half first).
#[must_use]
pub fn pad_before(input: usize, k: usize, stride: usize, padding: Padding) -> usize {
    pad_total(input, k, stride, padding) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception_stem_dimensions() {
        // The well-known Inception v3 stem, matching Table I's H/E columns.
        assert_eq!(conv_out_dim(299, 3, 2, Padding::Valid), 149); // 1a
        assert_eq!(conv_out_dim(149, 3, 1, Padding::Valid), 147); // 2a
        assert_eq!(conv_out_dim(147, 3, 1, Padding::Same), 147); // 2b
        assert_eq!(conv_out_dim(147, 3, 2, Padding::Valid), 73); // pool 3a
        assert_eq!(conv_out_dim(73, 1, 1, Padding::Valid), 73); // 3b
        assert_eq!(conv_out_dim(73, 3, 1, Padding::Valid), 71); // 4a
        assert_eq!(conv_out_dim(71, 3, 2, Padding::Valid), 35); // pool 5a
        assert_eq!(conv_out_dim(35, 3, 2, Padding::Valid), 17); // 6a
        assert_eq!(conv_out_dim(17, 3, 2, Padding::Valid), 8); // 7a
        assert_eq!(conv_out_dim(8, 8, 1, Padding::Valid), 1); // global pool
    }

    #[test]
    fn same_padding_amounts() {
        assert_eq!(pad_total(147, 3, 1, Padding::Same), 2);
        assert_eq!(pad_before(147, 3, 1, Padding::Same), 1);
        assert_eq!(pad_total(35, 5, 1, Padding::Same), 4);
        assert_eq!(pad_before(35, 5, 1, Padding::Same), 2);
        assert_eq!(pad_total(17, 7, 1, Padding::Same), 6);
        assert_eq!(pad_total(73, 1, 1, Padding::Same), 0);
    }

    #[test]
    fn shape_indexing_is_hwc() {
        let s = Shape::new(4, 5, 3);
        assert_eq!(s.len(), 60);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 2), 2);
        assert_eq!(s.index(0, 1, 0), 3);
        assert_eq!(s.index(1, 0, 0), 15);
        assert_eq!(s.index(3, 4, 2), 59);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shape_index_checks_bounds() {
        let s = Shape::new(2, 2, 2);
        let _ = s.index(2, 0, 0);
    }
}
