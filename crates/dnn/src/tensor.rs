//! Quantized activation tensors and integer accumulator tensors.

use std::fmt;

use crate::{ActQuant, Shape};

/// An 8-bit quantized activation tensor in HWC layout with its affine
/// parameters.
///
/// # Examples
///
/// ```
/// use nc_dnn::{ActQuant, QTensor, Shape};
///
/// let t = QTensor::from_fn(Shape::new(2, 2, 3), ActQuant::default(), |y, x, c| {
///     (y * 6 + x * 3 + c) as u8
/// });
/// assert_eq!(t.get(1, 1, 2), 11);
/// ```
#[derive(Clone, PartialEq)]
pub struct QTensor {
    shape: Shape,
    data: Vec<u8>,
    params: ActQuant,
}

impl QTensor {
    /// Creates a tensor filled with the zero-point code (real value zero).
    #[must_use]
    pub fn zeros(shape: Shape, params: ActQuant) -> Self {
        QTensor {
            shape,
            data: vec![params.zero_point.clamp(0, 255) as u8; shape.len()],
            params,
        }
    }

    /// Creates a tensor by evaluating `f(y, x, c)` over the shape.
    #[must_use]
    pub fn from_fn(
        shape: Shape,
        params: ActQuant,
        mut f: impl FnMut(usize, usize, usize) -> u8,
    ) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for y in 0..shape.h {
            for x in 0..shape.w {
                for c in 0..shape.c {
                    data.push(f(y, x, c));
                }
            }
        }
        QTensor {
            shape,
            data,
            params,
        }
    }

    /// Wraps raw HWC data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    #[must_use]
    pub fn from_vec(shape: Shape, params: ActQuant, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), shape.len(), "data length must match shape");
        QTensor {
            shape,
            data,
            params,
        }
    }

    /// Tensor shape.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Quantization parameters.
    #[must_use]
    pub fn params(&self) -> ActQuant {
        self.params
    }

    /// Raw HWC bytes.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Code at `(y, x, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    #[inline]
    pub fn get(&self, y: usize, x: usize, c: usize) -> u8 {
        self.data[self.shape.index(y, x, c)]
    }

    /// Code at `(y, x, c)`, or the zero-point code for out-of-bounds
    /// coordinates — the padding semantics of quantized SAME convolution
    /// (padding contributes real zero).
    #[must_use]
    #[inline]
    pub fn get_padded(&self, y: isize, x: isize, c: usize) -> u8 {
        if y < 0 || x < 0 || y as usize >= self.shape.h || x as usize >= self.shape.w {
            self.params.zero_point.clamp(0, 255) as u8
        } else {
            self.get(y as usize, x as usize, c)
        }
    }

    /// Sets the code at `(y, x, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, y: usize, x: usize, c: usize, q: u8) {
        let idx = self.shape.index(y, x, c);
        self.data[idx] = q;
    }

    /// Dequantized real value at `(y, x, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn real(&self, y: usize, x: usize, c: usize) -> f64 {
        self.params.dequantize(self.get(y, x, c))
    }

    /// Replaces the quantization parameters without touching the codes
    /// (used after in-place code requantization).
    pub fn set_params(&mut self, params: ActQuant) {
        self.params = params;
    }
}

impl fmt::Debug for QTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QTensor {{ shape: {}, scale: {:.4e}, zero_point: {} }}",
            self.shape, self.params.scale, self.params.zero_point
        )
    }
}

/// A tensor of signed integer accumulators (one per output element of a
/// convolution sub-layer, before requantization).
#[derive(Clone, PartialEq, Eq)]
pub struct AccTensor {
    shape: Shape,
    data: Vec<i64>,
}

impl AccTensor {
    /// Creates a zeroed accumulator tensor.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        AccTensor {
            shape,
            data: vec![0; shape.len()],
        }
    }

    /// Tensor shape.
    #[must_use]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Accumulator at `(y, x, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    #[inline]
    pub fn get(&self, y: usize, x: usize, c: usize) -> i64 {
        self.data[self.shape.index(y, x, c)]
    }

    /// Sets the accumulator at `(y, x, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, y: usize, x: usize, c: usize, v: i64) {
        let idx = self.shape.index(y, x, c);
        self.data[idx] = v;
    }

    /// All accumulator values.
    #[must_use]
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// Minimum and maximum accumulator values (the in-cache min/max
    /// reduction of the quantization step computes exactly this).
    #[must_use]
    pub fn min_max(&self) -> (i64, i64) {
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for &v in &self.data {
            min = min.min(v);
            max = max.max(v);
        }
        (min, max)
    }

    /// Applies `ReLU` in the accumulator domain (real zero is accumulator
    /// zero, so `max(acc, 0)` is exact).
    pub fn relu(&mut self) {
        for v in &mut self.data {
            *v = (*v).max(0);
        }
    }
}

impl fmt::Debug for AccTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (min, max) = if self.data.is_empty() {
            (0, 0)
        } else {
            self.min_max()
        };
        write!(
            f,
            "AccTensor {{ shape: {}, min: {min}, max: {max} }}",
            self.shape
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qtensor_roundtrip() {
        let shape = Shape::new(3, 4, 2);
        let mut t = QTensor::zeros(shape, ActQuant::from_range(-1.0, 1.0));
        t.set(2, 3, 1, 200);
        assert_eq!(t.get(2, 3, 1), 200);
        assert_eq!(t.data().len(), 24);
    }

    #[test]
    fn padding_returns_zero_point() {
        let params = ActQuant::from_range(-1.0, 1.0);
        let t = QTensor::zeros(Shape::new(2, 2, 1), params);
        let zp = params.zero_point as u8;
        assert_eq!(t.get_padded(-1, 0, 0), zp);
        assert_eq!(t.get_padded(0, 5, 0), zp);
        assert_eq!(t.get_padded(1, 1, 0), zp, "in-bounds zeros are zp too");
        assert!((t.params().dequantize(t.get_padded(-1, -1, 0))).abs() < params.scale);
    }

    #[test]
    fn acc_tensor_min_max_and_relu() {
        let mut a = AccTensor::zeros(Shape::new(1, 1, 4));
        a.set(0, 0, 0, -50);
        a.set(0, 0, 1, 7);
        a.set(0, 0, 2, 1000);
        assert_eq!(a.min_max(), (-50, 1000));
        a.relu();
        assert_eq!(a.min_max(), (0, 1000));
        assert_eq!(a.get(0, 0, 0), 0);
        assert_eq!(a.get(0, 0, 1), 7);
    }

    #[test]
    fn from_fn_order_is_hwc() {
        let t = QTensor::from_fn(Shape::new(2, 2, 2), ActQuant::default(), |y, x, c| {
            (y * 100 + x * 10 + c) as u8
        });
        assert_eq!(t.data()[0], 0);
        assert_eq!(t.data()[1], 1);
        assert_eq!(t.data()[2], 10);
        assert_eq!(t.data()[7], 111);
    }
}
