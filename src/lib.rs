//! Facade crate for the Neural Cache (ISCA 2018) reproduction workspace.
//!
//! This crate re-exports the member crates so the runnable examples under
//! `examples/` and the integration tests under `tests/` can address the whole
//! system through one import. Library users should depend on the individual
//! crates directly:
//!
//! - [`sram`] (`nc-sram`): the bit-line computing SRAM array substrate,
//! - [`geometry`] (`nc-geometry`): cache geometry, interconnect and DRAM models,
//! - [`dnn`] (`nc-dnn`): quantized DNN layers, reference executor, Inception v3,
//! - [`cache`] (`neural-cache`): the Neural Cache mapping + execution engine,
//! - [`serve`] (`nc-serve`): the discrete-event serving simulator (arrival
//!   traces, dynamic batching, latency SLOs),
//! - [`baselines`] (`nc-baselines`): calibrated CPU/GPU comparison models,
//! - [`verify`] (`nc-verify`): the static plan verifier (hazard checks,
//!   operand-layout lints, three-way cycle reconciliation),
//! - [`telemetry`] (`nc-telemetry`): simulated-time tracing, the metrics
//!   registry, and the Perfetto-loadable trace exporters.
//!
//! # Examples
//!
//! ```
//! use neural_cache_repro::cache::{NeuralCache, SystemConfig};
//! use neural_cache_repro::dnn::inception::inception_v3;
//!
//! let system = NeuralCache::new(SystemConfig::xeon_e5_2697_v3());
//! let report = system.run_inference(&inception_v3());
//! assert!(report.total().as_millis_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]

pub use nc_baselines as baselines;
pub use nc_dnn as dnn;
pub use nc_geometry as geometry;
pub use nc_serve as serve;
pub use nc_sram as sram;
pub use nc_telemetry as telemetry;
pub use nc_verify as verify;
pub use neural_cache as cache;
